use crate::activation::{silu_in_place, Silu};
use crate::dropout::Dropout;
use crate::embedding::{sinusoidal_embedding, sinusoidal_embedding_ws};
use crate::tensor::{cat_channels_into, cat_channels_shape};
use crate::upsample::{upsample_nearest2, upsample_nearest2_backward, upsample_nearest2_ws};
use crate::{Conv2d, GroupNorm, Linear, Param, Precision, SelfAttention2d, Tensor, Workspace};
use rand::Rng;

/// Configuration of the DDPM-style U-Net backbone (paper §IV-A).
///
/// The paper's full-scale instance uses four feature resolutions
/// (32x32 → 4x4), channel counts `[128, 256, 256, 256]`, two residual
/// blocks per level and self-attention at the 16x16 level. The
/// reproduction defaults to a reduced CPU-sized instance; the architecture
/// family is identical.
#[derive(Debug, Clone, PartialEq)]
pub struct UNetConfig {
    /// Input channels (the Deep Squish tensor's `C`).
    pub in_channels: usize,
    /// Output channels (`2 * C` logits for binary per-entry posteriors).
    pub out_channels: usize,
    /// Base feature width.
    pub base_channels: usize,
    /// Per-level channel multipliers; the number of levels is the length.
    pub channel_mults: Vec<usize>,
    /// Residual blocks per level.
    pub num_res_blocks: usize,
    /// Levels (0 = full resolution) that get a self-attention block after
    /// each residual block. Level `i` has spatial side `input_side / 2^i`;
    /// for the paper's 32x32 inputs, attention at 16x16 means level 1.
    pub attn_resolutions: Vec<usize>,
    /// Sinusoidal time-embedding dimensionality (must be even).
    pub time_dim: usize,
    /// GroupNorm group count (must divide every channel width).
    pub groups: usize,
    /// Dropout rate inside each residual block (paper trains with 0.1;
    /// dropout is active only in training mode, see [`UNet::set_training`]).
    pub dropout: f32,
}

impl Default for UNetConfig {
    fn default() -> Self {
        UNetConfig {
            in_channels: 4,
            out_channels: 8,
            base_channels: 32,
            channel_mults: vec![1, 2],
            num_res_blocks: 2,
            attn_resolutions: vec![1],
            time_dim: 64,
            groups: 8,
            dropout: 0.1,
        }
    }
}

/// A DDPM residual block: two norm-SiLU-conv stages with an additive
/// time-embedding projection and a (possibly projected) skip connection.
#[derive(Debug, Clone)]
struct ResBlock {
    norm1: GroupNorm,
    silu1: Silu,
    conv1: Conv2d,
    silu_t: Silu,
    temb_proj: Linear,
    norm2: GroupNorm,
    silu2: Silu,
    dropout: Dropout,
    conv2: Conv2d,
    skip: Option<Conv2d>,
    cache_hw: Option<(usize, usize)>,
}

impl ResBlock {
    fn new(
        in_c: usize,
        out_c: usize,
        time_dim: usize,
        groups: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        ResBlock {
            norm1: GroupNorm::new(groups.min(in_c), in_c),
            silu1: Silu::new(),
            conv1: Conv2d::new(in_c, out_c, 3, 1, 1, rng),
            silu_t: Silu::new(),
            temb_proj: Linear::new(time_dim, out_c, rng),
            norm2: GroupNorm::new(groups.min(out_c), out_c),
            silu2: Silu::new(),
            dropout: Dropout::new(dropout),
            conv2: Conv2d::new(out_c, out_c, 3, 1, 1, rng),
            skip: (in_c != out_c).then(|| Conv2d::new_1x1(in_c, out_c, rng)),
            cache_hw: None,
        }
    }

    fn forward(&mut self, x: &Tensor, temb: &Tensor, rng: &mut rand::rngs::StdRng) -> Tensor {
        let (h, w) = (x.shape()[2], x.shape()[3]);
        self.cache_hw = Some((h, w));
        let mut out = self
            .conv1
            .forward(&self.silu1.forward(&self.norm1.forward(x)));
        let t = self.temb_proj.forward(&self.silu_t.forward(temb)); // (n, out_c)
        add_time_bias(&mut out, &t);
        let pre = self
            .dropout
            .forward(&self.silu2.forward(&self.norm2.forward(&out)), rng);
        let out = self.conv2.forward(&pre);
        let skipped = match &mut self.skip {
            Some(proj) => proj.forward(x),
            None => x.clone(),
        };
        out.add(&skipped)
    }

    /// Inference-only forward from a shared reference: no caches, dropout
    /// is the identity (evaluation semantics), scratch from `ws`.
    ///
    /// `stemb` is the **already SiLU-activated** time embedding: every
    /// block applies the same activation to the same tensor, so the
    /// U-Net computes it once per call instead of copy+SiLU per block.
    /// The whole norm→SiLU→conv→time-bias→norm→SiLU mid-section runs as
    /// two fused kernels ([`GroupNorm::infer_silu`] and
    /// [`Conv2d::infer_bias_norm_silu`]), each bit-identical to the layer
    /// sequence it replaces; conv2 and the skip add are unchanged.
    fn infer(&self, x: &Tensor, stemb: &Tensor, ws: &mut Workspace) -> Tensor {
        let hn = self.norm1.infer_silu(x, ws);
        let t = self.temb_proj.infer(stemb, ws);
        let h = self.conv1.infer_bias_norm_silu(&hn, &t, &self.norm2, ws);
        ws.recycle(hn);
        ws.recycle(t);
        let mut out = self.conv2.infer(&h, ws);
        ws.recycle(h);
        match &self.skip {
            Some(proj) => {
                let skipped = proj.infer(x, ws);
                out.add_assign(&skipped);
                ws.recycle(skipped);
            }
            None => out.add_assign(x),
        }
        out
    }

    /// Prepacks the weights of every GEMM-backed sublayer (see
    /// [`Conv2d::prepack_with`]).
    fn prepack_with(&mut self, precision: Precision) {
        self.conv1.prepack_with(precision);
        self.temb_proj.prepack_with(precision);
        self.conv2.prepack_with(precision);
        if let Some(skip) = &mut self.skip {
            skip.prepack_with(precision);
        }
    }

    /// Returns `(grad_x, grad_temb)`.
    fn backward(&mut self, grad_y: &Tensor) -> (Tensor, Tensor) {
        let (h, w) = self.cache_hw.expect("backward before forward");
        // Skip path.
        let grad_x_skip = match &mut self.skip {
            Some(proj) => proj.backward(grad_y),
            None => grad_y.clone(),
        };
        // Main path, second stage.
        let g = self.conv2.backward(grad_y);
        let g = self.dropout.backward(&g);
        let g = self.silu2.backward(&g);
        let grad_mid = self.norm2.backward(&g);
        // Time branch: grad is the HW-sum per (n, c).
        let (n, c) = (grad_mid.shape()[0], grad_mid.shape()[1]);
        let mut grad_t = Tensor::zeros(&[n, c]);
        for ni in 0..n {
            for ci in 0..c {
                let mut s = 0.0;
                for hi in 0..h {
                    for wi in 0..w {
                        s += grad_mid.at4(ni, ci, hi, wi);
                    }
                }
                grad_t.data_mut()[ni * c + ci] = s;
            }
        }
        let g_t = self.temb_proj.backward(&grad_t);
        let grad_temb = self.silu_t.backward(&g_t);
        // Main path, first stage.
        let g = self.conv1.backward(&grad_mid);
        let g = self.silu1.backward(&g);
        let grad_x_main = self.norm1.backward(&g);
        (grad_x_main.add(&grad_x_skip), grad_temb)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.norm1.params_mut();
        params.extend(self.conv1.params_mut());
        params.extend(self.temb_proj.params_mut());
        params.extend(self.norm2.params_mut());
        params.extend(self.conv2.params_mut());
        if let Some(skip) = &mut self.skip {
            params.extend(skip.params_mut());
        }
        params
    }

    fn params(&self) -> Vec<&Param> {
        let mut params = self.norm1.params();
        params.extend(self.conv1.params());
        params.extend(self.temb_proj.params());
        params.extend(self.norm2.params());
        params.extend(self.conv2.params());
        if let Some(skip) = &self.skip {
            params.extend(skip.params());
        }
        params
    }
}

/// Broadcast-adds the `(n, c)` time projection over the HW plane of an
/// `(n, c, h, w)` feature map.
fn add_time_bias(out: &mut Tensor, t: &Tensor) {
    let (h, w) = (out.shape()[2], out.shape()[3]);
    let hw = h * w;
    assert_eq!(out.len(), t.len() * hw, "time bias shape mismatch");
    for (plane, row) in out.data_mut().chunks_mut(hw).enumerate() {
        let tv = t.data()[plane]; // planes iterate in (n, c) order
        for v in row {
            *v += tv;
        }
    }
}

/// One encoder level: residual (+ optional attention) blocks, then an
/// optional stride-2 downsampling convolution.
#[derive(Debug, Clone)]
struct DownStage {
    blocks: Vec<(ResBlock, Option<SelfAttention2d>)>,
    down: Option<Conv2d>,
}

/// One decoder level: residual (+ optional attention) blocks consuming skip
/// connections, then an optional upsampling convolution.
#[derive(Debug, Clone)]
struct UpStage {
    blocks: Vec<(ResBlock, Option<SelfAttention2d>)>,
    up: Option<Conv2d>,
}

/// The full U-Net: time MLP, encoder, attention-equipped bottleneck,
/// skip-connected decoder and output head.
#[derive(Debug, Clone)]
pub struct UNet {
    config: UNetConfig,
    time_lin1: Linear,
    time_silu: Silu,
    time_lin2: Linear,
    stem: Conv2d,
    down: Vec<DownStage>,
    mid1: ResBlock,
    mid_attn: SelfAttention2d,
    mid2: ResBlock,
    up: Vec<UpStage>,
    head_norm: GroupNorm,
    head_silu: Silu,
    head_conv: Conv2d,
    cache_skip_channels: Vec<usize>,
    dropout_rng: rand::rngs::StdRng,
}

impl UNet {
    /// Builds the network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent (zero channels, odd
    /// `time_dim`, group counts that do not divide channel widths, empty
    /// `channel_mults`).
    pub fn new(config: &UNetConfig, rng: &mut impl Rng) -> Self {
        assert!(!config.channel_mults.is_empty(), "need at least one level");
        assert!(config.time_dim.is_multiple_of(2), "time_dim must be even");
        assert!(config.base_channels > 0 && config.in_channels > 0);
        let base = config.base_channels;
        let levels = config.channel_mults.len();

        let time_lin1 = Linear::new(config.time_dim, config.time_dim, rng);
        let time_lin2 = Linear::new(config.time_dim, config.time_dim, rng);
        let stem = Conv2d::new(config.in_channels, base, 3, 1, 1, rng);

        let mut chs: Vec<usize> = vec![base];
        let mut ch = base;
        let mut down = Vec::with_capacity(levels);
        for (level, &mult) in config.channel_mults.iter().enumerate() {
            let mut blocks = Vec::with_capacity(config.num_res_blocks);
            for _ in 0..config.num_res_blocks {
                let out_c = base * mult;
                let res = ResBlock::new(
                    ch,
                    out_c,
                    config.time_dim,
                    config.groups,
                    config.dropout,
                    rng,
                );
                ch = out_c;
                let attn = config
                    .attn_resolutions
                    .contains(&level)
                    .then(|| SelfAttention2d::new(ch, config.groups.min(ch), rng));
                blocks.push((res, attn));
                chs.push(ch);
            }
            let is_last = level == levels - 1;
            let down_conv = (!is_last).then(|| {
                chs.push(ch);
                Conv2d::new(ch, ch, 3, 2, 1, rng)
            });
            down.push(DownStage {
                blocks,
                down: down_conv,
            });
        }

        let mid1 = ResBlock::new(ch, ch, config.time_dim, config.groups, config.dropout, rng);
        let mid_attn = SelfAttention2d::new(ch, config.groups.min(ch), rng);
        let mid2 = ResBlock::new(ch, ch, config.time_dim, config.groups, config.dropout, rng);

        let mut up = Vec::with_capacity(levels);
        for (level, &mult) in config.channel_mults.iter().enumerate().rev() {
            let mut blocks = Vec::with_capacity(config.num_res_blocks + 1);
            for _ in 0..config.num_res_blocks + 1 {
                let skip_ch = chs.pop().expect("skip bookkeeping broke");
                let out_c = base * mult;
                let res = ResBlock::new(
                    ch + skip_ch,
                    out_c,
                    config.time_dim,
                    config.groups,
                    config.dropout,
                    rng,
                );
                ch = out_c;
                let attn = config
                    .attn_resolutions
                    .contains(&level)
                    .then(|| SelfAttention2d::new(ch, config.groups.min(ch), rng));
                blocks.push((res, attn));
            }
            let up_conv = (level != 0).then(|| Conv2d::new(ch, ch, 3, 1, 1, rng));
            up.push(UpStage {
                blocks,
                up: up_conv,
            });
        }
        assert!(chs.is_empty(), "skip bookkeeping broke");

        UNet {
            config: config.clone(),
            time_lin1,
            time_silu: Silu::new(),
            time_lin2,
            stem,
            down,
            mid1,
            mid_attn,
            mid2,
            up,
            head_norm: GroupNorm::new(config.groups.min(ch), ch),
            head_silu: Silu::new(),
            head_conv: Conv2d::new(ch, config.out_channels, 3, 1, 1, rng),
            cache_skip_channels: Vec::new(),
            dropout_rng: rand::SeedableRng::seed_from_u64(rng.gen()),
        }
    }

    /// Switches every dropout layer between training (stochastic) and
    /// evaluation (identity) mode. Networks start in evaluation mode; the
    /// diffusion trainer enables training mode for its optimisation steps.
    pub fn set_training(&mut self, training: bool) {
        for stage in &mut self.down {
            for (res, _) in &mut stage.blocks {
                res.dropout.set_training(training);
            }
        }
        self.mid1.dropout.set_training(training);
        self.mid2.dropout.set_training(training);
        for stage in &mut self.up {
            for (res, _) in &mut stage.blocks {
                res.dropout.set_training(training);
            }
        }
    }

    /// The configuration the network was built from.
    pub fn config(&self) -> &UNetConfig {
        &self.config
    }

    /// Total scalar parameter count.
    pub fn parameter_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Forward pass over a batch: `x` is `(n, in_channels, s, s)` and
    /// `steps[i]` is the diffusion step index of batch item `i`.
    ///
    /// # Panics
    ///
    /// Panics when the batch size disagrees with `steps.len()`, the spatial
    /// side is not divisible by `2^(levels-1)`, or channels mismatch.
    pub fn forward(&mut self, x: &Tensor, steps: &[usize]) -> Tensor {
        assert_eq!(x.shape().len(), 4, "expected NCHW input");
        assert_eq!(x.shape()[0], steps.len(), "batch/steps mismatch");
        let levels = self.config.channel_mults.len();
        assert!(
            x.shape()[2].is_multiple_of(1 << (levels - 1)),
            "spatial side must be divisible by 2^(levels-1)"
        );

        let emb = sinusoidal_embedding(steps, self.config.time_dim);
        let temb = self
            .time_lin2
            .forward(&self.time_silu.forward(&self.time_lin1.forward(&emb)));

        let mut drop_rng = self.dropout_rng.clone();
        let mut h = self.stem.forward(x);
        let mut skips: Vec<Tensor> = vec![h.clone()];
        for stage in &mut self.down {
            for (res, attn) in &mut stage.blocks {
                h = res.forward(&h, &temb, &mut drop_rng);
                if let Some(attn) = attn {
                    h = attn.forward(&h);
                }
                skips.push(h.clone());
            }
            if let Some(down) = &mut stage.down {
                h = down.forward(&h);
                skips.push(h.clone());
            }
        }

        h = self.mid1.forward(&h, &temb, &mut drop_rng);
        h = self.mid_attn.forward(&h);
        h = self.mid2.forward(&h, &temb, &mut drop_rng);

        self.cache_skip_channels = skips.iter().map(|s| s.shape()[1]).collect();
        for stage in &mut self.up {
            for (res, attn) in &mut stage.blocks {
                let skip = skips.pop().expect("skip stack underflow");
                let cat = h.cat_channels(&skip);
                h = res.forward(&cat, &temb, &mut drop_rng);
                if let Some(attn) = attn {
                    h = attn.forward(&h);
                }
            }
            if let Some(upc) = &mut stage.up {
                h = upc.forward(&upsample_nearest2(&h));
            }
        }
        debug_assert!(skips.is_empty());
        self.dropout_rng = drop_rng;

        self.head_conv
            .forward(&self.head_silu.forward(&self.head_norm.forward(&h)))
    }

    /// Prepacks every GEMM-backed layer's weights (reshaped/packed weight
    /// matrices, pre-transposed linear weights) so [`UNet::infer`] skips
    /// all per-call weight preparation. Idempotent.
    ///
    /// Intended for frozen weights — after training or after loading a
    /// model. Resuming training is safe: every layer's `forward` discards
    /// its packed copy before computing, so the training path always uses
    /// the live weights (re-run `prepack` once training ends). Mutating
    /// parameters directly and then calling [`UNet::infer`] without a
    /// fresh `prepack`, however, leaves the packed copies stale.
    pub fn prepack(&mut self) {
        self.prepack_with(Precision::Exact);
    }

    /// [`UNet::prepack`] with an explicit weight precision for every
    /// packed copy: [`Precision::Exact`] is the bit-exact default;
    /// [`Precision::Bf16`] rounds packed weights to bfloat16 (f32
    /// accumulation) for a smaller working set at an opt-in accuracy
    /// cost. Re-running with a different precision replaces the packs.
    pub fn prepack_with(&mut self, precision: Precision) {
        self.time_lin1.prepack_with(precision);
        self.time_lin2.prepack_with(precision);
        self.stem.prepack_with(precision);
        for stage in &mut self.down {
            for (res, attn) in &mut stage.blocks {
                res.prepack_with(precision);
                if let Some(attn) = attn {
                    attn.prepack_with(precision);
                }
            }
            if let Some(down) = &mut stage.down {
                down.prepack_with(precision);
            }
        }
        self.mid1.prepack_with(precision);
        self.mid_attn.prepack_with(precision);
        self.mid2.prepack_with(precision);
        for stage in &mut self.up {
            for (res, attn) in &mut stage.blocks {
                res.prepack_with(precision);
                if let Some(attn) = attn {
                    attn.prepack_with(precision);
                }
            }
            if let Some(upc) = &mut stage.up {
                upc.prepack_with(precision);
            }
        }
        self.head_conv.prepack_with(precision);
    }

    /// Inference-only forward pass from a shared reference.
    ///
    /// Computes exactly what [`UNet::forward`] computes in evaluation mode
    /// (dropout is the identity; outputs are bit-equal), but caches
    /// nothing and draws every intermediate tensor from `ws`: no backward
    /// pass is possible and no internal state changes, so a `UNet` can be
    /// shared across threads (`&self`) with one [`Workspace`] per thread.
    /// After the first call warms the workspace, steady-state calls
    /// perform no heap allocation. The returned tensor is pool-backed —
    /// recycle it into `ws` when done to keep the pool in steady state.
    ///
    /// # Batch invariance
    ///
    /// Every layer processes batch items independently with a fixed
    /// per-element accumulation order (convolutions and attention run one
    /// GEMM per item; the linear layers' GEMM grows only its M dimension,
    /// which never reorders a row's inner product; GroupNorm statistics
    /// are per `(item, group)`). Item `i` of a batched call is therefore
    /// **bit-identical** to a single-item call on the same input and
    /// step — the contract the micro-batched diffusion sampler relies on,
    /// pinned by `tests/golden_infer.rs`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`UNet::forward`].
    pub fn infer(&self, x: &Tensor, steps: &[usize], ws: &mut Workspace) -> Tensor {
        assert_eq!(x.shape().len(), 4, "expected NCHW input");
        assert_eq!(x.shape()[0], steps.len(), "batch/steps mismatch");
        let levels = self.config.channel_mults.len();
        assert!(
            x.shape()[2].is_multiple_of(1 << (levels - 1)),
            "spatial side must be divisible by 2^(levels-1)"
        );

        let emb = sinusoidal_embedding_ws(steps, self.config.time_dim, ws);
        // Hidden-layer SiLU fused into the GEMM epilogue; the final
        // embedding is activated once here (every residual block consumes
        // silu(temb), so per-block copies are pure waste).
        let t1 = self.time_lin1.infer_silu(&emb, ws);
        ws.recycle(emb);
        let mut temb = self.time_lin2.infer(&t1, ws);
        ws.recycle(t1);
        silu_in_place(&mut temb);

        // Encoder: each produced feature map doubles as the next stage's
        // input and a skip connection, so it is pushed (not copied) and
        // borrowed back from the stack.
        let mut skips = ws.take_skip_stack();
        skips.push(self.stem.infer(x, ws));
        for stage in &self.down {
            for (res, attn) in &stage.blocks {
                let mut h = res.infer(skips.last().expect("stem pushed"), &temb, ws);
                if let Some(attn) = attn {
                    let a = attn.infer(&h, ws);
                    ws.recycle(h);
                    h = a;
                }
                skips.push(h);
            }
            if let Some(down) = &stage.down {
                let h = down.infer(skips.last().expect("blocks pushed"), ws);
                skips.push(h);
            }
        }

        let m1 = self
            .mid1
            .infer(skips.last().expect("encoder pushed"), &temb, ws);
        let ma = self.mid_attn.infer(&m1, ws);
        ws.recycle(m1);
        let mut h = self.mid2.infer(&ma, &temb, ws);
        ws.recycle(ma);

        for stage in &self.up {
            for (res, attn) in &stage.blocks {
                let skip = skips.pop().expect("skip stack underflow");
                let mut cat = ws.take_uninit(&cat_channels_shape(&h, &skip));
                cat_channels_into(&h, &skip, &mut cat);
                ws.recycle(h);
                ws.recycle(skip);
                h = res.infer(&cat, &temb, ws);
                ws.recycle(cat);
                if let Some(attn) = attn {
                    let a = attn.infer(&h, ws);
                    ws.recycle(h);
                    h = a;
                }
            }
            if let Some(upc) = &stage.up {
                let u = upsample_nearest2_ws(&h, ws);
                ws.recycle(h);
                h = upc.infer(&u, ws);
                ws.recycle(u);
            }
        }
        debug_assert!(skips.is_empty());
        ws.put_skip_stack(skips);
        ws.recycle(temb);

        let hn = self.head_norm.infer_silu(&h, ws);
        ws.recycle(h);
        let out = self.head_conv.infer(&hn, ws);
        ws.recycle(hn);
        out
    }

    /// Backward pass: accumulates every parameter gradient and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics when called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_temb_total: Option<Tensor> = None;
        let accumulate_temb = |grad: Tensor, total: &mut Option<Tensor>| match total {
            Some(t) => t.add_assign(&grad),
            None => *total = Some(grad),
        };

        // Head.
        let g = self.head_conv.backward(grad_out);
        let g = self.head_silu.backward(&g);
        let mut g = self.head_norm.backward(&g);

        // Decoder in reverse; collect skip grads in pop order reversed.
        //
        // Forward pushed skips s_0..s_{K-1} and the decoder consumed them
        // last-first (s_{K-1} at the first cat). Backward therefore visits
        // the cat that consumed s_0 FIRST, so skip channel counts are read
        // from the front of the recorded list, and the grads collected here
        // come out in push order (g(s_0), g(s_1), ...).
        let mut skip_ch_front = 0usize;
        let mut skip_grads: Vec<Tensor> = Vec::new();
        for stage in self.up.iter_mut().rev() {
            if let Some(upc) = &mut stage.up {
                let gu = upc.backward(&g);
                g = upsample_nearest2_backward(&gu);
            }
            for (res, attn) in stage.blocks.iter_mut().rev() {
                if let Some(attn) = attn {
                    g = attn.backward(&g);
                }
                let (gcat, gt) = res.backward(&g);
                accumulate_temb(gt, &mut grad_temb_total);
                // Split cat gradient into main and skip parts.
                let skip_ch = self.cache_skip_channels[skip_ch_front];
                skip_ch_front += 1;
                let main_ch = gcat.shape()[1] - skip_ch;
                let (gm, gs) = gcat.split_channels(main_ch);
                skip_grads.push(gs);
                g = gm;
            }
        }

        // Middle.
        let (gm, gt) = self.mid2.backward(&g);
        accumulate_temb(gt, &mut grad_temb_total);
        let gm = self.mid_attn.backward(&gm);
        let (mut g, gt) = self.mid1.backward(&gm);
        accumulate_temb(gt, &mut grad_temb_total);

        // Encoder in reverse. skip_grads currently holds grads in the order
        // the decoder consumed them backwards, i.e. skip_grads[k] matches the
        // (K-1-k)-th pushed skip... pops happened from the end, and backward
        // visited cat operations in reverse, so the first entry of skip_grads
        // corresponds to the FIRST pushed skip. Encoder backward needs them
        // last-pushed-first, so pop from the end of skip_grads.
        for stage in self.down.iter_mut().rev() {
            if let Some(down) = &mut stage.down {
                let gs = skip_grads.pop().expect("skip grad underflow");
                g.add_assign(&gs);
                g = down.backward(&g);
            }
            for (res, attn) in stage.blocks.iter_mut().rev() {
                let gs = skip_grads.pop().expect("skip grad underflow");
                g.add_assign(&gs);
                if let Some(attn) = attn {
                    g = attn.backward(&g);
                }
                let (gx, gt) = res.backward(&g);
                accumulate_temb(gt, &mut grad_temb_total);
                g = gx;
            }
        }
        // Stem skip.
        let gs = skip_grads.pop().expect("skip grad underflow");
        g.add_assign(&gs);
        debug_assert!(skip_grads.is_empty());
        let grad_input = self.stem.backward(&g);

        // Time MLP.
        let gt = grad_temb_total.expect("at least one res block");
        let gt = self.time_lin2.backward(&gt);
        let gt = self.time_silu.backward(&gt);
        let _ = self.time_lin1.backward(&gt);

        grad_input
    }

    /// Every trainable parameter in a stable order (safe to pair with one
    /// [`crate::Adam`] instance across steps).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.time_lin1.params_mut();
        params.extend(self.time_lin2.params_mut());
        params.extend(self.stem.params_mut());
        for stage in &mut self.down {
            for (res, attn) in &mut stage.blocks {
                params.extend(res.params_mut());
                if let Some(attn) = attn {
                    params.extend(attn.params_mut());
                }
            }
            if let Some(down) = &mut stage.down {
                params.extend(down.params_mut());
            }
        }
        params.extend(self.mid1.params_mut());
        params.extend(self.mid_attn.params_mut());
        params.extend(self.mid2.params_mut());
        for stage in &mut self.up {
            for (res, attn) in &mut stage.blocks {
                params.extend(res.params_mut());
                if let Some(attn) = attn {
                    params.extend(attn.params_mut());
                }
            }
            if let Some(upc) = &mut stage.up {
                params.extend(upc.params_mut());
            }
        }
        params.extend(self.head_norm.params_mut());
        params.extend(self.head_conv.params_mut());
        params
    }

    /// Every trainable parameter behind shared references, in the same
    /// stable order as [`UNet::params_mut`] — the order
    /// [`crate::save_params`] serialises.
    pub fn params(&self) -> Vec<&Param> {
        let mut params = self.time_lin1.params();
        params.extend(self.time_lin2.params());
        params.extend(self.stem.params());
        for stage in &self.down {
            for (res, attn) in &stage.blocks {
                params.extend(res.params());
                if let Some(attn) = attn {
                    params.extend(attn.params());
                }
            }
            if let Some(down) = &stage.down {
                params.extend(down.params());
            }
        }
        params.extend(self.mid1.params());
        params.extend(self.mid_attn.params());
        params.extend(self.mid2.params());
        for stage in &self.up {
            for (res, attn) in &stage.blocks {
                params.extend(res.params());
                if let Some(attn) = attn {
                    params.extend(attn.params());
                }
            }
            if let Some(upc) = &stage.up {
                params.extend(upc.params());
            }
        }
        params.extend(self.head_norm.params());
        params.extend(self.head_conv.params());
        params
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, finite_diff};
    use rand::SeedableRng;

    fn tiny_config() -> UNetConfig {
        UNetConfig {
            in_channels: 2,
            out_channels: 4,
            base_channels: 4,
            channel_mults: vec![1, 2],
            num_res_blocks: 1,
            attn_resolutions: vec![1],
            time_dim: 8,
            groups: 2,
            dropout: 0.0,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut net = UNet::new(&tiny_config(), &mut rng);
        let x = Tensor::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        let y = net.forward(&x, &[0, 999]);
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
    }

    #[test]
    fn single_level_config_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let config = UNetConfig {
            channel_mults: vec![1],
            attn_resolutions: vec![],
            ..tiny_config()
        };
        let mut net = UNet::new(&config, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = net.forward(&x, &[5]);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn three_level_config_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let config = UNetConfig {
            channel_mults: vec![1, 1, 2],
            attn_resolutions: vec![2],
            ..tiny_config()
        };
        let mut net = UNet::new(&config, &mut rng);
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
        let y = net.forward(&x, &[10]);
        assert_eq!(y.shape(), &[1, 4, 8, 8]);
        let g = net.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn time_step_changes_output() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut net = UNet::new(&tiny_config(), &mut rng);
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
        let y0 = net.forward(&x, &[0]);
        let y1 = net.forward(&x, &[500]);
        assert!(y0.sub(&y1).max_abs() > 1e-4);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let config = UNetConfig {
            in_channels: 1,
            out_channels: 2,
            base_channels: 2,
            channel_mults: vec![1, 1],
            num_res_blocks: 1,
            attn_resolutions: vec![],
            time_dim: 4,
            groups: 1,
            dropout: 0.0,
        };
        let net = UNet::new(&config, &mut rng);
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let mut live = net.clone();
        let y = live.forward(&x, &[3]);
        let analytic = live.backward(&Tensor::full(y.shape(), 1.0));
        let base = net.clone();
        let numeric = finite_diff(&x, move |t| {
            let mut n = base.clone();
            n.forward(t, &[3]).sum()
        });
        assert_close(&analytic, &numeric, 8e-2, "unet dx");
    }

    #[test]
    fn parameter_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let config = UNetConfig {
            in_channels: 1,
            out_channels: 2,
            base_channels: 2,
            channel_mults: vec![1, 1],
            num_res_blocks: 1,
            attn_resolutions: vec![],
            time_dim: 4,
            groups: 1,
            dropout: 0.0,
        };
        let net = UNet::new(&config, &mut rng);
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let mut live = net.clone();
        let y = live.forward(&x, &[3]);
        let _ = live.backward(&Tensor::full(y.shape(), 1.0));

        // Check the stem weight gradient end to end.
        let base = net.clone();
        let x2 = x.clone();
        let numeric = finite_diff(&net.stem.weight.value, move |w| {
            let mut n = base.clone();
            n.stem.weight.value = w.clone();
            n.forward(&x2, &[3]).sum()
        });
        assert_close(&live.stem.weight.grad, &numeric, 8e-2, "unet stem dW");

        // And the time MLP weight gradient (exercises temb accumulation).
        let base = net.clone();
        let x2 = x.clone();
        let numeric = finite_diff(&net.time_lin1.weight.value, move |w| {
            let mut n = base.clone();
            n.time_lin1.weight.value = w.clone();
            n.forward(&x2, &[3]).sum()
        });
        assert_close(&live.time_lin1.weight.grad, &numeric, 8e-2, "unet time dW");
    }

    #[test]
    fn training_step_reduces_simple_loss() {
        use crate::{Adam, AdamConfig};
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut net = UNet::new(&tiny_config(), &mut rng);
        let x = Tensor::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        let target = Tensor::randn(&[2, 4, 8, 8], 1.0, &mut rng);
        let mut adam = Adam::new(AdamConfig {
            lr: 1e-2,
            ..AdamConfig::default()
        });
        let mut losses = Vec::new();
        for _ in 0..20 {
            let y = net.forward(&x, &[1, 2]);
            let diff = y.sub(&target);
            let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / diff.len() as f32;
            losses.push(loss);
            let grad = diff.scale(2.0 / diff.len() as f32);
            let _ = net.backward(&grad);
            adam.step(&mut net.params_mut());
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "loss did not drop: {losses:?}"
        );
    }

    #[test]
    fn dropout_is_stochastic_in_training_deterministic_in_eval() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let config = UNetConfig {
            dropout: 0.5,
            ..tiny_config()
        };
        let mut net = UNet::new(&config, &mut rng);
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
        // Evaluation mode (the default): repeated forwards agree exactly.
        let a = net.forward(&x, &[3]);
        let b = net.forward(&x, &[3]);
        assert_eq!(a, b);
        // Training mode: fresh masks change the output.
        net.set_training(true);
        let c = net.forward(&x, &[3]);
        let d = net.forward(&x, &[3]);
        assert!(c.sub(&d).max_abs() > 1e-6, "dropout had no effect");
        // Back to eval: deterministic again and equal to the original.
        net.set_training(false);
        let e = net.forward(&x, &[3]);
        assert_eq!(a, e);
    }

    #[test]
    fn parameter_count_is_stable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let net = UNet::new(&tiny_config(), &mut rng);
        let a = net.parameter_count();
        let b = net.parameter_count();
        assert_eq!(a, b);
        assert!(a > 1000, "unexpectedly small network: {a}");
    }

    #[test]
    fn infer_matches_eval_forward_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let config = UNetConfig {
            dropout: 0.5, // must be ignored in both eval forward and infer
            ..tiny_config()
        };
        let mut net = UNet::new(&config, &mut rng);
        let x = Tensor::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        let mut ws = Workspace::new();
        let via_infer = net.infer(&x, &[1, 77], &mut ws);
        let via_forward = net.forward(&x, &[1, 77]);
        assert_eq!(via_infer, via_forward);
        // infer is stateless: repeated calls agree bit-for-bit, with or
        // without prepacked weights, warm or cold workspace.
        assert_eq!(net.infer(&x, &[1, 77], &mut ws), via_infer);
        net.prepack();
        assert_eq!(net.infer(&x, &[1, 77], &mut ws), via_infer);
        assert_eq!(net.infer(&x, &[1, 77], &mut Workspace::new()), via_infer);
    }

    #[test]
    fn shared_and_mut_param_orders_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut net = UNet::new(&tiny_config(), &mut rng);
        let shapes: Vec<Vec<usize>> = net
            .params()
            .iter()
            .map(|p| p.value.shape().to_vec())
            .collect();
        let shapes_mut: Vec<Vec<usize>> = net
            .params_mut()
            .iter()
            .map(|p| p.value.shape().to_vec())
            .collect();
        assert_eq!(shapes, shapes_mut);
    }
}
