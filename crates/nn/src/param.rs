use crate::Tensor;

/// A trainable parameter: value plus accumulated gradient.
///
/// Layers accumulate into [`Param::grad`] during `backward`; the optimizer
/// reads and zeroes it. Adam's moment buffers live in the optimizer, keyed
/// by parameter order, so `Param` itself stays minimal.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Always `false` for valid tensors; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::full(&[3], 1.0));
        p.grad.data_mut()[1] = 5.0;
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(p.len(), 3);
    }
}
