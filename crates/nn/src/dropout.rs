use crate::Tensor;
use rand::Rng;

/// Inverted dropout (the paper trains with dropout rate 0.1, §IV-A).
///
/// During training each activation is zeroed with probability `rate` and
/// survivors are scaled by `1/(1-rate)` so the expected activation is
/// unchanged; during evaluation the layer is the identity. The layer is
/// *off* (evaluation mode) by default so inference code cannot
/// accidentally sample a stochastic network.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f32,
    training: bool,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with the given drop probability.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1)`.
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        Dropout {
            rate,
            training: false,
            mask: None,
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Switches between training (stochastic) and evaluation (identity)
    /// behaviour.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// `true` when in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Forward pass. In training mode a fresh mask is drawn from `rng`.
    pub fn forward(&mut self, x: &Tensor, rng: &mut impl Rng) -> Tensor {
        if !self.training || self.rate == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(x.shape());
        for m in mask.data_mut() {
            *m = if rng.gen::<f32>() < keep { scale } else { 0.0 };
        }
        let out = elementwise_mul(x, &mask);
        self.mask = Some(mask);
        out
    }

    /// Backward pass: applies the cached mask (identity in eval mode).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => elementwise_mul(grad_out, mask),
            None => grad_out.clone(),
        }
    }
}

fn elementwise_mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect();
    Tensor::from_vec(a.shape(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut d = Dropout::new(0.5);
        let x = Tensor::randn(&[32], 1.0, &mut rng);
        let y = d.forward(&x, &mut rng);
        assert_eq!(y, x);
        let g = d.backward(&x);
        assert_eq!(g, x);
    }

    #[test]
    fn training_mode_zeroes_and_scales() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut d = Dropout::new(0.5);
        d.set_training(true);
        let x = Tensor::full(&[10_000], 1.0);
        let y = d.forward(&x, &mut rng);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.05, "drop fraction {frac}");
        // Survivors are scaled by 2.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // Expectation preserved.
        assert!((y.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut d = Dropout::new(0.3);
        d.set_training(true);
        let x = Tensor::full(&[64], 1.0);
        let y = d.forward(&x, &mut rng);
        let g = d.backward(&Tensor::full(&[64], 1.0));
        // Gradient is zero exactly where the output was zero.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_rate_is_identity_even_in_training() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut d = Dropout::new(0.0);
        d.set_training(true);
        let x = Tensor::randn(&[8], 1.0, &mut rng);
        assert_eq!(d.forward(&x, &mut rng), x);
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn rejects_rate_one() {
        let _ = Dropout::new(1.0);
    }
}
