//! Reusable scratch memory for the inference hot path.
//!
//! Every `infer` in this crate draws its intermediate tensors from a
//! [`Workspace`] instead of the global allocator: a buffer is *taken* for
//! the duration of a computation and *recycled* back into the pool when the
//! value is no longer needed. Because a fixed network evaluates the same
//! sequence of shapes on every call, the pool reaches a steady state after
//! the first evaluation and all subsequent evaluations perform **zero heap
//! allocations** — the property the diffusion sampler relies on for its
//! K-step denoising loop (verified by the `alloc_steady_state` integration
//! test at the workspace root).

use crate::Tensor;

/// A scratch arena of recyclable `f32` buffers (plus the U-Net's skip
/// stack), sized lazily by the first evaluation that uses it.
///
/// Workspaces are cheap to create but only pay off when reused: keep one
/// per thread and pass it to every `infer` call on that thread. A
/// `Workspace` is intentionally `!Sync`-shaped (all methods take
/// `&mut self`); cross-thread sharing is the caller's job via one
/// workspace per worker.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    skip_stack: Vec<Tensor>,
    steps: Vec<usize>,
    probs: Vec<f64>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Takes a tensor of the given shape with **unspecified contents**
    /// (callers must fully overwrite it). Reuses a pooled buffer when one
    /// with sufficient capacity exists; otherwise allocates (a one-time
    /// cost while the pool warms up).
    ///
    /// # Panics
    ///
    /// Panics on an invalid shape (empty or zero dimension).
    pub fn take_uninit(&mut self, shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        let mut buf = self.grab(len);
        buf.resize(len, 0.0);
        Tensor::from_vec(shape, buf)
    }

    /// Takes an all-zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics on an invalid shape.
    pub fn take_zeroed(&mut self, shape: &[usize]) -> Tensor {
        let mut t = self.take_uninit(shape);
        t.data_mut().fill(0.0);
        t
    }

    /// Returns a tensor's buffer to the pool for reuse.
    pub fn recycle(&mut self, t: Tensor) {
        self.pool.push(t.into_vec());
    }

    /// Borrows the reusable skip-connection stack (empties it first). Pair
    /// with [`Workspace::put_skip_stack`] so the capacity is retained.
    pub(crate) fn take_skip_stack(&mut self) -> Vec<Tensor> {
        let mut stack = std::mem::take(&mut self.skip_stack);
        stack.clear();
        stack
    }

    /// Returns the skip stack taken by [`Workspace::take_skip_stack`].
    pub(crate) fn put_skip_stack(&mut self, stack: Vec<Tensor>) {
        self.skip_stack = stack;
    }

    /// Borrows the reusable step-index buffer, filled with `n` copies of
    /// `k` — the `steps` argument a lock-step micro-batch passes to
    /// [`crate::UNet::infer`] (every chain sits at the same diffusion
    /// step). Return it with [`Workspace::put_steps`] so the capacity is
    /// retained and steady-state batched inference stays allocation-free.
    pub fn take_steps(&mut self, k: usize, n: usize) -> Vec<usize> {
        let mut steps = std::mem::take(&mut self.steps);
        steps.clear();
        steps.resize(n, k);
        steps
    }

    /// Returns the buffer taken by [`Workspace::take_steps`].
    pub fn put_steps(&mut self, steps: Vec<usize>) {
        self.steps = steps;
    }

    /// Borrows the reusable `f64` staging buffer, sized to `len` with
    /// **unspecified contents** (callers must fully overwrite it). The
    /// sampler uses it to stage per-lane probability/mask vectors — e.g.
    /// the pre-guidance copy of a lane's `p1` — without allocating in the
    /// denoising loop. Return it with [`Workspace::put_probs`] so the
    /// capacity is retained.
    pub fn take_probs(&mut self, len: usize) -> Vec<f64> {
        let mut probs = std::mem::take(&mut self.probs);
        probs.resize(len, 0.0);
        probs
    }

    /// Returns the buffer taken by [`Workspace::take_probs`].
    pub fn put_probs(&mut self, probs: Vec<f64>) {
        self.probs = probs;
    }

    /// Pops a pooled buffer able to hold `len` elements without
    /// reallocating, or the best available fallback.
    fn grab(&mut self, len: usize) -> Vec<f32> {
        match self.pool.iter().position(|b| b.capacity() >= len) {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                buf.truncate(len);
                buf
            }
            None => Vec::with_capacity(len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_capacity() {
        let mut ws = Workspace::new();
        let t = ws.take_uninit(&[4, 8]);
        assert_eq!(t.shape(), &[4, 8]);
        assert_eq!(t.len(), 32);
        let ptr = t.data().as_ptr();
        ws.recycle(t);
        // Same-size retake reuses the very same buffer.
        let t2 = ws.take_uninit(&[32]);
        assert_eq!(t2.data().as_ptr(), ptr);
        // A smaller request also fits in the pooled buffer.
        ws.recycle(t2);
        let t3 = ws.take_uninit(&[2, 2]);
        assert_eq!(t3.data().as_ptr(), ptr);
        assert_eq!(t3.len(), 4);
    }

    #[test]
    fn take_zeroed_is_zero_after_reuse() {
        let mut ws = Workspace::new();
        let mut t = ws.take_uninit(&[8]);
        t.data_mut().fill(3.5);
        ws.recycle(t);
        let z = ws.take_zeroed(&[8]);
        assert!(z.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn steps_buffer_round_trips_and_keeps_capacity() {
        let mut ws = Workspace::new();
        let steps = ws.take_steps(7, 5);
        assert_eq!(steps, vec![7; 5]);
        let ptr = steps.as_ptr();
        let cap = steps.capacity();
        ws.put_steps(steps);
        // A same-or-smaller retake reuses the very same allocation.
        let again = ws.take_steps(3, 4);
        assert_eq!(again, vec![3; 4]);
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(again.capacity(), cap);
        ws.put_steps(again);
    }

    #[test]
    fn probs_buffer_round_trips_and_keeps_capacity() {
        let mut ws = Workspace::new();
        let mut probs = ws.take_probs(6);
        assert_eq!(probs.len(), 6);
        probs.fill(0.25);
        let ptr = probs.as_ptr();
        let cap = probs.capacity();
        ws.put_probs(probs);
        let again = ws.take_probs(4);
        assert_eq!(again.len(), 4);
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(again.capacity(), cap);
        ws.put_probs(again);
    }

    #[test]
    fn steady_state_needs_no_new_buffers() {
        let mut ws = Workspace::new();
        // Warm up with a representative shape sequence.
        let shapes: &[&[usize]] = &[&[16, 256], &[144, 256], &[1, 16, 16, 16]];
        for _ in 0..3 {
            let taken: Vec<Tensor> = shapes.iter().map(|s| ws.take_uninit(s)).collect();
            for t in taken {
                ws.recycle(t);
            }
        }
        assert_eq!(ws.pool.len(), shapes.len());
    }
}
