use crate::gemm::{matmul, transpose};
use crate::{Param, Tensor};
use rand::Rng;

/// 2-D convolution over NCHW tensors, implemented as im2col + GEMM.
///
/// Supports arbitrary kernel size, stride and zero padding — everything the
/// DDPM U-Net needs (3x3 stride-1 pad-1 feature convs, 3x3 stride-2 pad-1
/// downsampling, 1x1 skip/attention projections).
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Kernel of shape `(out_c, in_c, kh, kw)`.
    pub weight: Param,
    /// Bias of shape `(out_c,)`.
    pub bias: Param,
    stride: usize,
    padding: usize,
    cache_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal initialisation.
    ///
    /// # Panics
    ///
    /// Panics when `kernel` or `stride` is zero.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        let fan_in = (in_c * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        Conv2d {
            weight: Param::new(Tensor::randn(&[out_c, in_c, kernel, kernel], std, rng)),
            bias: Param::new(Tensor::zeros(&[out_c])),
            stride,
            padding,
            cache_input: None,
        }
    }

    /// Convenience constructor for a 1x1 stride-1 projection.
    pub fn new_1x1(in_c: usize, out_c: usize, rng: &mut impl Rng) -> Self {
        Conv2d::new(in_c, out_c, 1, 1, 0, rng)
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.weight.value.shape()[2]
    }

    /// Spatial output size for a given input size.
    pub fn out_size(&self, in_size: usize) -> usize {
        (in_size + 2 * self.padding - self.kernel()) / self.stride + 1
    }

    /// Forward pass (training mode: caches the input for `backward`).
    ///
    /// # Panics
    ///
    /// Panics on non-4-D input, channel mismatch, or an input smaller than
    /// the kernel after padding.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_input = Some(x.clone());
        self.infer(x)
    }

    /// Inference-only forward pass from a shared reference: identical
    /// arithmetic to [`Conv2d::forward`], but nothing is cached, so no
    /// backward pass is possible afterwards.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Conv2d::forward`].
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 4, "conv expects NCHW input");
        assert_eq!(x.shape()[1], self.in_channels(), "channel mismatch");
        let (n, _ic, h, w) = shape4(x);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let oc = self.out_channels();
        let k = self.kernel();
        let w_mat = self
            .weight
            .value
            .clone()
            .reshape(&[oc, self.in_channels() * k * k]);

        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for ni in 0..n {
            let cols = self.im2col(x, ni, oh, ow);
            let y = matmul(&w_mat, &cols); // (oc, oh*ow)
            for c in 0..oc {
                let b = self.bias.value.data()[c];
                for i in 0..oh * ow {
                    out.data_mut()[((ni * oc + c) * oh + i / ow) * ow + i % ow] =
                        y.data()[c * oh * ow + i] + b;
                }
            }
        }
        out
    }

    /// Backward pass: accumulates weight/bias gradients, returns grad wrt
    /// input.
    ///
    /// # Panics
    ///
    /// Panics when called before `forward` or on shape mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_input
            .as_ref()
            .expect("backward before forward")
            .clone();
        let (n, ic, h, w) = shape4(&x);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let oc = self.out_channels();
        let k = self.kernel();
        assert_eq!(
            grad_out.shape(),
            &[n, oc, oh, ow],
            "grad_out shape mismatch"
        );

        let w_mat = self.weight.value.clone().reshape(&[oc, ic * k * k]);
        let w_mat_t = transpose(&w_mat);

        let mut grad_input = Tensor::zeros(&[n, ic, h, w]);
        let mut grad_w_mat = Tensor::zeros(&[oc, ic * k * k]);
        for ni in 0..n {
            // grad_out slice as (oc, L).
            let l = oh * ow;
            let mut go = Tensor::zeros(&[oc, l]);
            for c in 0..oc {
                for i in 0..l {
                    go.data_mut()[c * l + i] =
                        grad_out.data()[((ni * oc + c) * oh + i / ow) * ow + i % ow];
                }
            }
            // Bias gradient: row sums.
            for c in 0..oc {
                let s: f32 = go.data()[c * l..(c + 1) * l].iter().sum();
                self.bias.grad.data_mut()[c] += s;
            }
            // Weight gradient: go (oc, L) x cols^T (L, ick2).
            let cols = self.im2col(&x, ni, oh, ow);
            grad_w_mat.add_assign(&matmul(&go, &transpose(&cols)));
            // Input gradient: w^T (ick2, oc) x go (oc, L) -> col grads.
            let gcols = matmul(&w_mat_t, &go);
            self.col2im_accumulate(&gcols, &mut grad_input, ni, oh, ow);
        }
        self.weight
            .grad
            .add_assign(&grad_w_mat.reshape(&[oc, ic, k, k]));
        grad_input
    }

    /// Mutable access to the parameters, in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Shared access to the parameters, in the same stable order as
    /// [`Conv2d::params_mut`].
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    /// Builds the im2col matrix `(ic*k*k, oh*ow)` for batch item `ni`.
    fn im2col(&self, x: &Tensor, ni: usize, oh: usize, ow: usize) -> Tensor {
        let (_n, ic, h, w) = shape4(x);
        let k = self.kernel();
        let (s, p) = (self.stride, self.padding);
        let l = oh * ow;
        let mut cols = vec![0.0f32; ic * k * k * l];
        for c in 0..ic {
            for ki in 0..k {
                for kj in 0..k {
                    let row = (c * k + ki) * k + kj;
                    for oy in 0..oh {
                        let iy = oy * s + ki;
                        if iy < p || iy >= h + p {
                            continue;
                        }
                        let iy = iy - p;
                        for ox in 0..ow {
                            let ix = ox * s + kj;
                            if ix < p || ix >= w + p {
                                continue;
                            }
                            let ix = ix - p;
                            cols[row * l + oy * ow + ox] = x.at4(ni, c, iy, ix);
                        }
                    }
                }
            }
        }
        Tensor::from_vec(&[ic * k * k, l], cols)
    }

    /// Scatters column gradients back onto the padded input grid.
    fn col2im_accumulate(
        &self,
        gcols: &Tensor,
        grad_input: &mut Tensor,
        ni: usize,
        oh: usize,
        ow: usize,
    ) {
        let (_n, ic, h, w) = shape4(grad_input);
        let k = self.kernel();
        let (s, p) = (self.stride, self.padding);
        let l = oh * ow;
        for c in 0..ic {
            for ki in 0..k {
                for kj in 0..k {
                    let row = (c * k + ki) * k + kj;
                    for oy in 0..oh {
                        let iy = oy * s + ki;
                        if iy < p || iy >= h + p {
                            continue;
                        }
                        let iy = iy - p;
                        for ox in 0..ow {
                            let ix = ox * s + kj;
                            if ix < p || ix >= w + p {
                                continue;
                            }
                            let ix = ix - p;
                            let g = gcols.data()[row * l + oy * ow + ox];
                            let idx = ((ni * ic + c) * h + iy) * w + ix;
                            grad_input.data_mut()[idx] += g;
                        }
                    }
                }
            }
        }
    }
}

fn shape4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(t.shape().len(), 4, "expected 4-D tensor");
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, finite_diff};
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_1x1() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new_1x1(1, 1, &mut rng);
        conv.weight.value.data_mut()[0] = 1.0;
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn known_3x3_same_conv() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        // Averaging kernel.
        for v in conv.weight.value.data_mut() {
            *v = 1.0;
        }
        let x = Tensor::full(&[1, 1, 3, 3], 1.0);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        // Centre sees 9 ones; corners see 4.
        assert!((y.at4(0, 0, 1, 1) - 9.0).abs() < 1e-5);
        assert!((y.at4(0, 0, 0, 0) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn stride_two_output_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 3, 4, 4]);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        assert_eq!(conv.infer(&x), conv.forward(&x));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 5, 5], 1.0, &mut rng);
        let mut live = conv.clone();
        let y = live.forward(&x);
        let analytic = live.backward(&Tensor::full(y.shape(), 1.0));
        let base = conv.clone();
        let numeric = finite_diff(&x, move |t| {
            let mut c = base.clone();
            c.forward(t).sum()
        });
        assert_close(&analytic, &numeric, 2e-2, "conv dx");
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let conv = Conv2d::new(2, 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let mut live = conv.clone();
        let y = live.forward(&x);
        let _ = live.backward(&Tensor::full(y.shape(), 1.0));
        let x2 = x.clone();
        let base = conv.clone();
        let numeric = finite_diff(&conv.weight.value, move |w| {
            let mut c = base.clone();
            c.weight.value = w.clone();
            c.forward(&x2).sum()
        });
        assert_close(&live.weight.grad, &numeric, 2e-2, "conv dW");
    }

    #[test]
    fn strided_gradients_match_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        let mut live = conv.clone();
        let y = live.forward(&x);
        let analytic = live.backward(&Tensor::full(y.shape(), 1.0));
        let base = conv.clone();
        let numeric = finite_diff(&x, move |t| {
            let mut c = base.clone();
            c.forward(t).sum()
        });
        assert_close(&analytic, &numeric, 2e-2, "strided conv dx");
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        let x = Tensor::randn(&[2, 1, 3, 3], 1.0, &mut rng);
        let y = conv.forward(&x);
        let _ = conv.backward(&Tensor::full(y.shape(), 1.0));
        // 2 batch items x 9 positions.
        assert!((conv.bias.grad.data()[0] - 18.0).abs() < 1e-5);
    }
}
