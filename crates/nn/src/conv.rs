use crate::gemm::{
    gemm_packed, matmul, pack_a_into, packed_len, transpose, Epilogue, GroupNormSilu,
};
use crate::precision::bf16_round_slice;
use crate::{GroupNorm, Param, Precision, Tensor, Workspace};
use rand::Rng;

/// 2-D convolution over NCHW tensors, implemented as im2col + GEMM.
///
/// Supports arbitrary kernel size, stride and zero padding — everything the
/// DDPM U-Net needs (3x3 stride-1 pad-1 feature convs, 3x3 stride-2 pad-1
/// downsampling, 1x1 skip/attention projections).
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Kernel of shape `(out_c, in_c, kh, kw)`.
    pub weight: Param,
    /// Bias of shape `(out_c,)`.
    pub bias: Param,
    stride: usize,
    padding: usize,
    cache_input: Option<Tensor>,
    /// GEMM-panel-packed weight matrix, populated by [`Conv2d::prepack`]
    /// once the weights are frozen; `None` while training.
    packed: Option<Vec<f32>>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal initialisation.
    ///
    /// # Panics
    ///
    /// Panics when `kernel` or `stride` is zero.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        let fan_in = (in_c * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        Conv2d {
            weight: Param::new(Tensor::randn(&[out_c, in_c, kernel, kernel], std, rng)),
            bias: Param::new(Tensor::zeros(&[out_c])),
            stride,
            padding,
            cache_input: None,
            packed: None,
        }
    }

    /// Convenience constructor for a 1x1 stride-1 projection.
    pub fn new_1x1(in_c: usize, out_c: usize, rng: &mut impl Rng) -> Self {
        Conv2d::new(in_c, out_c, 1, 1, 0, rng)
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.weight.value.shape()[2]
    }

    /// Spatial output size for a given input size.
    pub fn out_size(&self, in_size: usize) -> usize {
        (in_size + 2 * self.padding - self.kernel()) / self.stride + 1
    }

    /// Precomputes the GEMM-ready packed weight matrix so every subsequent
    /// [`Conv2d::infer`] call skips the per-call packing step.
    ///
    /// Intended for frozen/trained models; a later [`Conv2d::forward`]
    /// call (resumed training) discards the packed copy so the training
    /// path always computes from the live weights — but mutating
    /// [`Conv2d::weight`] directly and then calling `infer` leaves the
    /// packed copy stale (re-run `prepack` after by-hand weight edits).
    pub fn prepack(&mut self) {
        self.prepack_with(Precision::Exact);
    }

    /// [`Conv2d::prepack`] with an explicit weight precision: `Exact`
    /// stores the packed weights bit-for-bit, `Bf16` rounds each packed
    /// value to bfloat16 (see [`crate::bf16_round`]; the bias stays f32
    /// and accumulation is unchanged).
    pub fn prepack_with(&mut self, precision: Precision) {
        let (oc, ckk) = (
            self.out_channels(),
            self.in_channels() * self.kernel() * self.kernel(),
        );
        // The (oc, ic, kh, kw) kernel in row-major order *is* the
        // (oc, ic*kh*kw) matrix — no reshape copy needed, only packing.
        let mut panel = vec![0.0f32; packed_len(oc, ckk)];
        pack_a_into(self.weight.value.data(), oc, ckk, &mut panel);
        if precision == Precision::Bf16 {
            bf16_round_slice(&mut panel);
        }
        self.packed = Some(panel);
    }

    /// `true` once [`Conv2d::prepack`] has run.
    pub fn is_prepacked(&self) -> bool {
        self.packed.is_some()
    }

    /// Forward pass (training mode: caches the input for `backward`).
    ///
    /// # Panics
    ///
    /// Panics on non-4-D input, channel mismatch, or an input smaller than
    /// the kernel after padding.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        // Training mutates the weights, so any prepacked copy is about to
        // go stale — drop it and compute from the live weights.
        self.packed = None;
        self.cache_input = Some(x.clone());
        self.infer(x, &mut Workspace::new())
    }

    /// Inference forward pass from a shared reference: identical
    /// arithmetic to [`Conv2d::forward`] (bit-equal outputs), but nothing
    /// is cached and all scratch memory comes from `ws`, so steady-state
    /// calls allocate nothing.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Conv2d::forward`].
    pub fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        self.infer_impl(x, None, ws)
    }

    /// Convolution with the residual-block mid-section fused into the GEMM
    /// epilogue: per batch item, the conv output has `row_extra`'s `(n,
    /// out_c)` row broadcast-added (the time-embedding projection), is
    /// group-normalised with `norm`'s parameters per `(item, group)`, and
    /// passed through SiLU — all while the `(out_c, L)` product block is
    /// still hot. Bit-identical to `infer` + `add_time_bias` +
    /// `norm.infer` + `silu_in_place` (pinned by `tests/golden_infer.rs`).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Conv2d::forward`], plus mismatched
    /// `row_extra`/`norm` shapes.
    pub fn infer_bias_norm_silu(
        &self,
        x: &Tensor,
        row_extra: &Tensor,
        norm: &GroupNorm,
        ws: &mut Workspace,
    ) -> Tensor {
        assert_eq!(
            row_extra.shape(),
            &[x.shape()[0], self.out_channels()],
            "row extra must be (batch, out_channels)"
        );
        self.infer_impl(x, Some((row_extra, norm)), ws)
    }

    fn infer_impl(
        &self,
        x: &Tensor,
        fused: Option<(&Tensor, &GroupNorm)>,
        ws: &mut Workspace,
    ) -> Tensor {
        assert_eq!(x.shape().len(), 4, "conv expects NCHW input");
        assert_eq!(x.shape()[1], self.in_channels(), "channel mismatch");
        let (n, ic, h, w) = shape4(x);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let (oc, k) = (self.out_channels(), self.kernel());
        let (l, ckk) = (oh * ow, ic * k * k);

        // Packed weights: frozen copy when available, otherwise packed
        // into workspace scratch (same values, so same results).
        let fresh_panel = match &self.packed {
            Some(_) => None,
            None => {
                let mut panel = ws.take_uninit(&[packed_len(oc, ckk)]);
                pack_a_into(self.weight.value.data(), oc, ckk, panel.data_mut());
                Some(panel)
            }
        };
        let panel: &[f32] = match (&self.packed, &fresh_panel) {
            (Some(p), _) => p,
            (None, Some(t)) => t.data(),
            (None, None) => unreachable!(),
        };

        let mut out = ws.take_uninit(&[n, oc, oh, ow]);
        if k == 1 && self.stride == 1 && self.padding == 0 {
            // 1x1 projection: the im2col matrix of an item *is* the item's
            // (ic, L) channel block — feed it to the GEMM directly.
            for ni in 0..n {
                let item = &x.data()[ni * ic * l..(ni + 1) * ic * l];
                gemm_packed(
                    panel,
                    item,
                    &mut out.data_mut()[ni * oc * l..(ni + 1) * oc * l],
                    oc,
                    ckk,
                    l,
                    self.item_epilogue(fused, ni, oc),
                );
            }
        } else {
            let mut cols = ws.take_uninit(&[ckk, l]);
            for ni in 0..n {
                let item = &x.data()[ni * ic * h * w..(ni + 1) * ic * h * w];
                im2col_into(
                    item,
                    ic,
                    h,
                    w,
                    k,
                    self.stride,
                    self.padding,
                    oh,
                    ow,
                    cols.data_mut(),
                );
                // The (oc, L) product block is exactly the (oc, oh, ow)
                // output slice of this batch item; bias (and, when fused,
                // the whole bias/norm/SiLU finish) rides in the epilogue.
                gemm_packed(
                    panel,
                    cols.data(),
                    &mut out.data_mut()[ni * oc * l..(ni + 1) * oc * l],
                    oc,
                    ckk,
                    l,
                    self.item_epilogue(fused, ni, oc),
                );
            }
            ws.recycle(cols);
        }
        if let Some(t) = fresh_panel {
            ws.recycle(t);
        }
        out
    }

    /// The per-item GEMM epilogue: plain per-row bias, or the fused
    /// bias + time-extra + GroupNorm + SiLU finish with this item's slice
    /// of the `(n, out_c)` extra matrix.
    fn item_epilogue<'a>(
        &'a self,
        fused: Option<(&'a Tensor, &'a GroupNorm)>,
        ni: usize,
        oc: usize,
    ) -> Epilogue<'a> {
        match fused {
            None => Epilogue::BiasPerRow(self.bias.value.data()),
            Some((extra, norm)) => Epilogue::BiasGroupNormSilu(GroupNormSilu {
                bias: self.bias.value.data(),
                row_extra: Some(&extra.data()[ni * oc..(ni + 1) * oc]),
                gamma: norm.gamma.value.data(),
                beta: norm.beta.value.data(),
                groups: norm.groups(),
                eps: norm.eps(),
            }),
        }
    }

    /// Backward pass: accumulates weight/bias gradients, returns grad wrt
    /// input.
    ///
    /// # Panics
    ///
    /// Panics when called before `forward` or on shape mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_input
            .as_ref()
            .expect("backward before forward")
            .clone();
        let (n, ic, h, w) = shape4(&x);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let oc = self.out_channels();
        let k = self.kernel();
        assert_eq!(
            grad_out.shape(),
            &[n, oc, oh, ow],
            "grad_out shape mismatch"
        );

        let w_mat = self.weight.value.clone().reshape(&[oc, ic * k * k]);
        let w_mat_t = transpose(&w_mat);

        let mut grad_input = Tensor::zeros(&[n, ic, h, w]);
        let mut grad_w_mat = Tensor::zeros(&[oc, ic * k * k]);
        let l = oh * ow;
        let mut go = Tensor::zeros(&[oc, l]);
        for ni in 0..n {
            // The (oc, oh, ow) slice of this batch item is already the
            // (oc, L) matrix — one contiguous copy, no per-element
            // division/modulo indexing.
            go.data_mut()
                .copy_from_slice(&grad_out.data()[ni * oc * l..(ni + 1) * oc * l]);
            // Bias gradient: row sums.
            for c in 0..oc {
                let s: f32 = go.data()[c * l..(c + 1) * l].iter().sum();
                self.bias.grad.data_mut()[c] += s;
            }
            // Weight gradient: go (oc, L) x cols^T (L, ick2).
            let cols = self.im2col(&x, ni, oh, ow);
            grad_w_mat.add_assign(&matmul(&go, &transpose(&cols)));
            // Input gradient: w^T (ick2, oc) x go (oc, L) -> col grads.
            let gcols = matmul(&w_mat_t, &go);
            self.col2im_accumulate(&gcols, &mut grad_input, ni, oh, ow);
        }
        self.weight
            .grad
            .add_assign(&grad_w_mat.reshape(&[oc, ic, k, k]));
        grad_input
    }

    /// Mutable access to the parameters, in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Shared access to the parameters, in the same stable order as
    /// [`Conv2d::params_mut`].
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    /// Builds the im2col matrix `(ic*k*k, oh*ow)` for batch item `ni`
    /// (allocating variant used by the training backward pass).
    fn im2col(&self, x: &Tensor, ni: usize, oh: usize, ow: usize) -> Tensor {
        let (_n, ic, h, w) = shape4(x);
        let k = self.kernel();
        let l = oh * ow;
        let mut cols = vec![0.0f32; ic * k * k * l];
        let item = &x.data()[ni * ic * h * w..(ni + 1) * ic * h * w];
        im2col_into(
            item,
            ic,
            h,
            w,
            k,
            self.stride,
            self.padding,
            oh,
            ow,
            &mut cols,
        );
        Tensor::from_vec(&[ic * k * k, l], cols)
    }

    /// Scatters column gradients back onto the padded input grid.
    fn col2im_accumulate(
        &self,
        gcols: &Tensor,
        grad_input: &mut Tensor,
        ni: usize,
        oh: usize,
        ow: usize,
    ) {
        let (_n, ic, h, w) = shape4(grad_input);
        let k = self.kernel();
        let (s, p) = (self.stride, self.padding);
        let l = oh * ow;
        for c in 0..ic {
            for ki in 0..k {
                for kj in 0..k {
                    let row = (c * k + ki) * k + kj;
                    for oy in 0..oh {
                        let iy = oy * s + ki;
                        if iy < p || iy >= h + p {
                            continue;
                        }
                        let iy = iy - p;
                        let grow = &gcols.data()[row * l + oy * ow..row * l + (oy + 1) * ow];
                        let drow_base = ((ni * ic + c) * h + iy) * w;
                        for (ox, &g) in grow.iter().enumerate() {
                            let ix = ox * s + kj;
                            if ix < p || ix >= w + p {
                                continue;
                            }
                            grad_input.data_mut()[drow_base + (ix - p)] += g;
                        }
                    }
                }
            }
        }
    }
}

/// Writes the im2col matrix `(ic*k*k, oh*ow)` of one `(ic, h, w)` input
/// item into `cols`, fully overwriting it (padding positions are written
/// as explicit zeros, so the destination may hold stale data).
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    item: &[f32],
    ic: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    let l = oh * ow;
    debug_assert_eq!(cols.len(), ic * k * k * l);
    let (s, p) = (stride, padding);
    if s == 1 && oh == h && ow == w {
        // Same-size stride-1 convolution (every feature conv in the
        // U-Net): for a fixed (c, ki, kj) the whole (oh, ow) destination
        // row is the source plane shifted by a constant offset, so it is
        // ONE clamped contiguous copy plus edge zeroing — instead of
        // per-output-row bookkeeping.
        for c in 0..ic {
            let plane = &item[c * h * w..(c + 1) * h * w];
            for ki in 0..k {
                for kj in 0..k {
                    let base = ((c * k + ki) * k + kj) * l;
                    let oy0 = p.saturating_sub(ki); // first valid output row
                    let oy1 = (h + p).saturating_sub(ki).min(h); // one past last
                    cols[base..base + oy0 * w].fill(0.0);
                    cols[base + oy1 * w..base + l].fill(0.0);
                    if oy0 < oy1 {
                        let shift = (oy0 + ki - p) * w; // >= 0 by construction
                        let mut d0 = oy0 * w;
                        let mut len = (oy1 - oy0) * w;
                        let s0 = if kj >= p {
                            (shift + kj - p).min(plane.len())
                        } else {
                            // Source would start p-kj before the plane;
                            // skip those (they are left-pad positions,
                            // zeroed below).
                            d0 += p - kj;
                            len -= p - kj;
                            shift
                        };
                        len = len.min(plane.len() - s0);
                        cols[base + d0..base + d0 + len].copy_from_slice(&plane[s0..s0 + len]);
                        // Horizontal pad columns picked up wrapped
                        // neighbours in the bulk copy; zero them.
                        if kj < p {
                            for oy in oy0..oy1 {
                                cols[base + oy * w..base + oy * w + (p - kj)].fill(0.0);
                            }
                        } else if kj > p {
                            for oy in oy0..oy1 {
                                cols[base + (oy + 1) * w - (kj - p)..base + (oy + 1) * w].fill(0.0);
                            }
                        }
                    }
                }
            }
        }
        return;
    }
    // Generic strided path: the same clamped-span idea as the fast path
    // above — the output positions whose sampled input index clears the
    // padding form one contiguous range per axis, computed once per
    // (ki, kj), so each destination row is two zero fills plus one
    // branch-free copy (contiguous for stride 1, strided gather
    // otherwise) instead of a per-element padding test.
    for c in 0..ic {
        for ki in 0..k {
            let oy0 = valid_start(ki, p, s);
            let oy1 = valid_end(ki, p, s, h, oh).max(oy0);
            for kj in 0..k {
                let row = (c * k + ki) * k + kj;
                let base = row * l;
                let ox0 = valid_start(kj, p, s);
                let ox1 = valid_end(kj, p, s, w, ow).max(ox0);
                cols[base..base + oy0 * ow].fill(0.0);
                cols[base + oy1 * ow..base + l].fill(0.0);
                for oy in oy0..oy1 {
                    let dst = &mut cols[base + oy * ow..base + (oy + 1) * ow];
                    dst[..ox0].fill(0.0);
                    dst[ox1..].fill(0.0);
                    if ox0 == ox1 {
                        continue;
                    }
                    let iy = oy * s + ki - p;
                    let src_row = &item[(c * h + iy) * w..(c * h + iy + 1) * w];
                    let sx0 = ox0 * s + kj - p;
                    if s == 1 {
                        dst[ox0..ox1].copy_from_slice(&src_row[sx0..sx0 + (ox1 - ox0)]);
                    } else {
                        for (d, &v) in dst[ox0..ox1]
                            .iter_mut()
                            .zip(src_row[sx0..].iter().step_by(s))
                        {
                            *d = v;
                        }
                    }
                }
            }
        }
    }
}

/// First output index along one axis whose sampled input position
/// `o * stride + kk` clears the left padding.
fn valid_start(kk: usize, p: usize, s: usize) -> usize {
    if kk >= p {
        0
    } else {
        (p - kk).div_ceil(s)
    }
}

/// One past the last output index along one axis whose sampled input
/// position lands inside the (unpadded) input, clamped to the output size.
fn valid_end(kk: usize, p: usize, s: usize, size: usize, osize: usize) -> usize {
    let span = (size + p).saturating_sub(kk);
    if span == 0 {
        0
    } else {
        ((span - 1) / s + 1).min(osize)
    }
}

fn shape4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(t.shape().len(), 4, "expected 4-D tensor");
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, finite_diff};
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_1x1() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new_1x1(1, 1, &mut rng);
        conv.weight.value.data_mut()[0] = 1.0;
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn known_3x3_same_conv() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        // Averaging kernel.
        for v in conv.weight.value.data_mut() {
            *v = 1.0;
        }
        let x = Tensor::full(&[1, 1, 3, 3], 1.0);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        // Centre sees 9 ones; corners see 4.
        assert!((y.at4(0, 0, 1, 1) - 9.0).abs() < 1e-5);
        assert!((y.at4(0, 0, 0, 0) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn stride_two_output_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 3, 4, 4]);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        let mut ws = Workspace::new();
        assert_eq!(conv.infer(&x, &mut ws), conv.forward(&x));
    }

    #[test]
    fn im2col_spans_match_per_element_reference() {
        // The span-based im2col must place exactly the same values as the
        // textbook per-element gather, across strides, paddings and kernel
        // sizes (including ones where whole rows/columns are padding).
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for (ic, h, w, k, s, p) in [
            (2usize, 6usize, 6usize, 3usize, 1usize, 1usize),
            (1, 5, 7, 3, 2, 1),
            (3, 8, 8, 3, 2, 1),
            (1, 4, 4, 1, 2, 0),
            (2, 6, 6, 5, 1, 2),
            (1, 3, 3, 3, 3, 2),
            (1, 4, 6, 3, 1, 0),
        ] {
            let oh = (h + 2 * p - k) / s + 1;
            let ow = (w + 2 * p - k) / s + 1;
            let item = Tensor::randn(&[ic, h, w], 1.0, &mut rng);
            let l = oh * ow;
            let mut cols = vec![f32::NAN; ic * k * k * l];
            im2col_into(item.data(), ic, h, w, k, s, p, oh, ow, &mut cols);
            for c in 0..ic {
                for ki in 0..k {
                    for kj in 0..k {
                        let row = (c * k + ki) * k + kj;
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let (iy, ix) = (oy * s + ki, ox * s + kj);
                                let expect = if iy < p || iy >= h + p || ix < p || ix >= w + p {
                                    0.0
                                } else {
                                    item.data()[(c * h + iy - p) * w + (ix - p)]
                                };
                                let got = cols[row * l + oy * ow + ox];
                                assert_eq!(
                                    got.to_bits(),
                                    expect.to_bits(),
                                    "(ic {ic} h {h} w {w} k {k} s {s} p {p}) row {row} oy {oy} ox {ox}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prepacked_infer_is_bit_identical_and_reuses_workspace() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut conv = Conv2d::new(3, 5, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let mut ws = Workspace::new();
        let fresh = conv.infer(&x, &mut ws);
        conv.prepack();
        assert!(conv.is_prepacked());
        let packed = conv.infer(&x, &mut ws);
        assert_eq!(fresh, packed, "prepacking must not change results");
        // Repeated calls reuse the same workspace buffers.
        let again = conv.infer(&x, &mut ws);
        assert_eq!(again, packed);
    }

    #[test]
    fn resumed_training_discards_stale_pack() {
        // prepack() then keep training: forward must compute from the
        // live weights, not the frozen packed copy.
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        conv.prepack();
        let mut reference = conv.clone();
        // Simulate an optimiser step between prepack and the next forward.
        for v in conv.weight.value.data_mut() {
            *v += 0.25;
        }
        for v in reference.weight.value.data_mut() {
            *v += 0.25;
        }
        reference.packed = None;
        assert!(conv.is_prepacked());
        let live = conv.forward(&x);
        assert!(!conv.is_prepacked(), "forward must drop the stale pack");
        assert_eq!(live, reference.forward(&x));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 5, 5], 1.0, &mut rng);
        let mut live = conv.clone();
        let y = live.forward(&x);
        let analytic = live.backward(&Tensor::full(y.shape(), 1.0));
        let base = conv.clone();
        let numeric = finite_diff(&x, move |t| {
            let mut c = base.clone();
            c.forward(t).sum()
        });
        assert_close(&analytic, &numeric, 2e-2, "conv dx");
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let conv = Conv2d::new(2, 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let mut live = conv.clone();
        let y = live.forward(&x);
        let _ = live.backward(&Tensor::full(y.shape(), 1.0));
        let x2 = x.clone();
        let base = conv.clone();
        let numeric = finite_diff(&conv.weight.value, move |w| {
            let mut c = base.clone();
            c.weight.value = w.clone();
            c.forward(&x2).sum()
        });
        assert_close(&live.weight.grad, &numeric, 2e-2, "conv dW");
    }

    #[test]
    fn strided_gradients_match_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        let mut live = conv.clone();
        let y = live.forward(&x);
        let analytic = live.backward(&Tensor::full(y.shape(), 1.0));
        let base = conv.clone();
        let numeric = finite_diff(&x, move |t| {
            let mut c = base.clone();
            c.forward(t).sum()
        });
        assert_close(&analytic, &numeric, 2e-2, "strided conv dx");
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        let x = Tensor::randn(&[2, 1, 3, 3], 1.0, &mut rng);
        let y = conv.forward(&x);
        let _ = conv.backward(&Tensor::full(y.shape(), 1.0));
        // 2 batch items x 9 positions.
        assert!((conv.bias.grad.data()[0] - 18.0).abs() < 1e-5);
    }
}
