//! Finite-difference gradient checking utilities (test-only).

use crate::Tensor;

/// Central-difference gradient of a scalar function of a tensor.
pub fn finite_diff(x: &Tensor, f: impl Fn(&Tensor) -> f32) -> Tensor {
    const EPS: f32 = 1e-2;
    let mut grad = Tensor::zeros(x.shape());
    for i in 0..x.len() {
        let mut plus = x.clone();
        plus.data_mut()[i] += EPS;
        let mut minus = x.clone();
        minus.data_mut()[i] -= EPS;
        grad.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * EPS);
    }
    grad
}

/// Asserts that two gradients agree within a mixed absolute/relative
/// tolerance.
pub fn assert_close(analytic: &Tensor, numeric: &Tensor, tol: f32, what: &str) {
    assert_eq!(analytic.shape(), numeric.shape(), "{what}: shape mismatch");
    for (i, (a, n)) in analytic.data().iter().zip(numeric.data()).enumerate() {
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() / denom < tol,
            "{what}[{i}]: analytic {a} vs numeric {n}"
        );
    }
}
