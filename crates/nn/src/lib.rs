//! Minimal pure-Rust neural-network substrate for the DiffPattern
//! reproduction.
//!
//! The paper trains its discrete diffusion model with a DDPM-style U-Net
//! backbone (paper §IV-A): four feature resolutions, two convolutional
//! residual blocks per level, a self-attention block at 16x16, GroupNorm,
//! SiLU activations, sinusoidal time embeddings and the Adam optimizer.
//! No Rust deep-learning framework with a stable training story was
//! acceptable as a dependency for this reproduction (see DESIGN.md), so
//! this crate implements the required subset from scratch:
//!
//! * [`Tensor`] — a dense `f32` NCHW tensor with shape-checked helpers,
//! * [`Conv2d`] — convolution via im2col GEMM, exact backward,
//! * [`GroupNorm`], [`silu`] — normalisation and activation with backward,
//! * [`SelfAttention2d`] — single-head spatial attention with backward,
//! * [`Linear`], [`sinusoidal_embedding`] — time-step conditioning,
//! * [`UNet`] — the full backbone with skip connections,
//! * [`Adam`] — optimizer with gradient clipping,
//! * [`Workspace`] — a scratch arena making the `infer` path
//!   allocation-free in steady state (paired with per-layer `prepack`
//!   weight packing and the blocked GEMM in this crate's `gemm` module).
//!
//! Every layer is validated against finite-difference gradients in its unit
//! tests; the U-Net itself has an end-to-end gradient check on a tiny
//! configuration.
//!
//! # Design: explicit caches instead of autograd
//!
//! Layers follow the classic `forward(&mut self, ..) -> Tensor` /
//! `backward(&mut self, grad) -> Tensor` protocol: the forward pass caches
//! whatever the backward pass needs, parameter gradients accumulate into
//! [`Param::grad`], and [`Adam::step`] consumes them. This keeps the whole
//! substrate dependency-free and easy to audit against the DDPM reference
//! implementation.
//!
//! # Example
//!
//! ```
//! use dp_nn::{Tensor, UNet, UNetConfig, Adam, AdamConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let config = UNetConfig {
//!     in_channels: 4,
//!     out_channels: 8,
//!     base_channels: 8,
//!     channel_mults: vec![1, 2],
//!     num_res_blocks: 1,
//!     attn_resolutions: vec![1],
//!     time_dim: 16,
//!     groups: 4,
//!     dropout: 0.1,
//! };
//! let mut net = UNet::new(&config, &mut rng);
//! let x = Tensor::randn(&[2, 4, 8, 8], 1.0, &mut rng);
//! let t = vec![3usize, 7];
//! let y = net.forward(&x, &t);
//! assert_eq!(y.shape(), &[2, 8, 8, 8]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod activation;
mod adam;
mod attention;
mod conv;
mod dropout;
mod embedding;
mod gemm;
mod linear;
mod norm;
mod param;
mod precision;
mod tensor;
mod unet;
mod upsample;
mod weights;
mod workspace;

pub use activation::{
    scale_and_softmax_rows_in_place, silu, silu_backward, silu_in_place, softmax_rows,
    softmax_rows_in_place, Silu,
};
pub use adam::{Adam, AdamConfig};
pub use attention::SelfAttention2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use embedding::{sinusoidal_embedding, sinusoidal_embedding_ws};
pub use gemm::{
    gemm_thread_cap, matmul, set_gemm_thread_cap, transpose, with_inner_gemm_parallelism,
};
pub use linear::Linear;
pub use norm::GroupNorm;
pub use param::Param;
pub use precision::{bf16_round, Precision};
pub use tensor::Tensor;
pub use unet::{UNet, UNetConfig};
pub use upsample::{upsample_nearest2, upsample_nearest2_backward, upsample_nearest2_ws};
pub use weights::{load_params, save_params, WeightsError};
pub use workspace::Workspace;

#[cfg(test)]
pub(crate) mod gradcheck;
