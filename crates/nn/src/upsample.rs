use crate::{Tensor, Workspace};

/// Nearest-neighbour 2x spatial upsampling of an NCHW tensor (the U-Net
/// decoder's upsampling step).
///
/// # Panics
///
/// Panics when the input is not 4-D.
pub fn upsample_nearest2(x: &Tensor) -> Tensor {
    let (n, c, h, w) = check4(x);
    let mut out = Tensor::zeros(&[n, c, h * 2, w * 2]);
    upsample_into(x, &mut out);
    out
}

/// [`upsample_nearest2`] drawing its output from a [`Workspace`] — the
/// allocation-free variant the U-Net inference path uses.
///
/// # Panics
///
/// Panics when the input is not 4-D.
pub fn upsample_nearest2_ws(x: &Tensor, ws: &mut Workspace) -> Tensor {
    let (n, c, h, w) = check4(x);
    let mut out = ws.take_uninit(&[n, c, h * 2, w * 2]);
    upsample_into(x, &mut out);
    out
}

fn check4(x: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(x.shape().len(), 4, "expected NCHW input");
    (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3])
}

/// Row-wise upsample core: every input row becomes two doubled output
/// rows, fully overwriting the destination.
fn upsample_into(x: &Tensor, out: &mut Tensor) {
    let (n, c, h, w) = check4(x);
    let w2 = 2 * w;
    for plane in 0..n * c {
        for hi in 0..h {
            let src = &x.data()[(plane * h + hi) * w..(plane * h + hi + 1) * w];
            let base = (plane * h + hi) * 4 * w;
            let (row0, row1) = out.data_mut()[base..base + 2 * w2].split_at_mut(w2);
            for (wi, &v) in src.iter().enumerate() {
                row0[2 * wi] = v;
                row0[2 * wi + 1] = v;
            }
            row1.copy_from_slice(row0);
        }
    }
}

/// Backward of [`upsample_nearest2`]: sums each 2x2 output block back onto
/// its source cell.
///
/// # Panics
///
/// Panics when the gradient is not 4-D with even spatial dimensions.
pub fn upsample_nearest2_backward(grad_out: &Tensor) -> Tensor {
    assert_eq!(grad_out.shape().len(), 4, "expected NCHW gradient");
    let (n, c, h2, w2) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    assert!(h2 % 2 == 0 && w2 % 2 == 0, "odd spatial dims");
    let (h, w) = (h2 / 2, w2 / 2);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    let s = grad_out.at4(ni, ci, 2 * hi, 2 * wi)
                        + grad_out.at4(ni, ci, 2 * hi + 1, 2 * wi)
                        + grad_out.at4(ni, ci, 2 * hi, 2 * wi + 1)
                        + grad_out.at4(ni, ci, 2 * hi + 1, 2 * wi + 1);
                    out.set4(ni, ci, hi, wi, s);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, finite_diff};
    use rand::SeedableRng;

    #[test]
    fn doubles_spatial_dims() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = upsample_nearest2(&x);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert_eq!(y.at4(0, 0, 0, 0), 1.0);
        assert_eq!(y.at4(0, 0, 1, 1), 1.0);
        assert_eq!(y.at4(0, 0, 0, 2), 2.0);
        assert_eq!(y.at4(0, 0, 3, 3), 4.0);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        let w = Tensor::randn(&[1, 2, 6, 6], 1.0, &mut rng);
        let w2 = w.clone();
        let analytic = {
            // Loss = sum(upsample(x) * w); grad wrt upsample output is w.
            upsample_nearest2_backward(&w)
        };
        let numeric = finite_diff(&x, move |t| {
            upsample_nearest2(t)
                .data()
                .iter()
                .zip(w2.data())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_close(&analytic, &numeric, 1e-2, "upsample dx");
    }

    #[test]
    fn round_trip_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let y = upsample_nearest2(&x);
        let g = upsample_nearest2_backward(&y);
        assert_eq!(g.shape(), x.shape());
        // Each cell's gradient is the sum of its 4 copies = 4 * value.
        for (a, b) in g.data().iter().zip(x.data()) {
            assert!((a - 4.0 * b).abs() < 1e-5);
        }
    }
}
