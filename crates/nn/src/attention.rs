use crate::activation::{scale_and_softmax_rows_in_place, softmax_rows, softmax_rows_backward};
use crate::gemm::{
    gemm_packed, matmul, pack_a_into, packed_len, transpose, transpose_into, Epilogue,
};
use crate::{Conv2d, GroupNorm, Param, Precision, Tensor, Workspace};
use rand::Rng;

/// Single-head spatial self-attention block with a residual connection,
/// as placed at the 16x16 level of the paper's U-Net (§IV-A).
///
/// `y = x + proj(attend(norm(x)))` where attention runs over the `H*W`
/// spatial positions with channel-dimension keys/queries/values produced by
/// 1x1 convolutions.
#[derive(Debug, Clone)]
pub struct SelfAttention2d {
    norm: GroupNorm,
    q: Conv2d,
    k: Conv2d,
    v: Conv2d,
    proj: Conv2d,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    /// Per batch item: (q, k, v) as `(c, L)` matrices and attention `(L, L)`.
    per_item: Vec<(Tensor, Tensor, Tensor, Tensor)>,
    shape: [usize; 4],
}

impl SelfAttention2d {
    /// Creates the block for `channels` feature channels.
    ///
    /// # Panics
    ///
    /// Panics when `channels` is not divisible by `groups`.
    pub fn new(channels: usize, groups: usize, rng: &mut impl Rng) -> Self {
        SelfAttention2d {
            norm: GroupNorm::new(groups, channels),
            q: Conv2d::new_1x1(channels, channels, rng),
            k: Conv2d::new_1x1(channels, channels, rng),
            v: Conv2d::new_1x1(channels, channels, rng),
            proj: Conv2d::new_1x1(channels, channels, rng),
            cache: None,
        }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics on non-4-D input or channel mismatch.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = shape4(x);
        let l = h * w;
        let scale = 1.0 / (c as f32).sqrt();

        let normed = self.norm.forward(x);
        let qs = self.q.forward(&normed);
        let ks = self.k.forward(&normed);
        let vs = self.v.forward(&normed);

        let mut attended = Tensor::zeros(&[n, c, h, w]);
        let mut per_item = Vec::with_capacity(n);
        for ni in 0..n {
            let qm = slice_to_mat(&qs, ni, c, l);
            let km = slice_to_mat(&ks, ni, c, l);
            let vm = slice_to_mat(&vs, ni, c, l);
            // scores (L, L) = q^T k * scale
            let scores = matmul(&transpose(&qm), &km).scale(scale);
            let attn = softmax_rows(&scores);
            // out (c, L) = v attn^T
            let out = matmul(&vm, &transpose(&attn));
            write_mat(&mut attended, &out, ni, c, l, w);
            per_item.push((qm, km, vm, attn));
        }
        self.cache = Some(Cache {
            per_item,
            shape: [n, c, h, w],
        });

        let projected = self.proj.forward(&attended);
        x.add(&projected)
    }

    /// Precomputes packed weights for the four 1x1 projections so
    /// subsequent [`SelfAttention2d::infer`] calls skip per-call packing.
    /// Call only once the weights are final.
    pub fn prepack(&mut self) {
        self.prepack_with(Precision::Exact);
    }

    /// [`SelfAttention2d::prepack`] with an explicit weight precision for
    /// the four 1x1 projections (the norm has no packed weights).
    pub fn prepack_with(&mut self, precision: Precision) {
        self.q.prepack_with(precision);
        self.k.prepack_with(precision);
        self.v.prepack_with(precision);
        self.proj.prepack_with(precision);
    }

    /// Inference forward pass from a shared reference: identical
    /// arithmetic to [`SelfAttention2d::forward`] (bit-equal outputs)
    /// with no caching; all scratch memory comes from `ws`. Per-item
    /// `(c, L)` matrices are borrowed directly from the NCHW buffers
    /// (each batch item's channel block *is* that matrix), so the only
    /// data movement is the two transposes the math requires.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SelfAttention2d::forward`].
    pub fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (n, c, h, w) = shape4(x);
        let l = h * w;
        let scale = 1.0 / (c as f32).sqrt();

        let normed = self.norm.infer(x, ws);
        let qs = self.q.infer(&normed, ws);
        let ks = self.k.infer(&normed, ws);
        let vs = self.v.infer(&normed, ws);
        ws.recycle(normed);

        let mut attended = ws.take_uninit(&[n, c, h, w]);
        let mut qt = ws.take_uninit(&[l, c]);
        let mut scores = ws.take_uninit(&[l, l]);
        let mut attn_t = ws.take_uninit(&[l, l]);
        let mut panel_q = ws.take_uninit(&[packed_len(l, c)]);
        let mut panel_v = ws.take_uninit(&[packed_len(c, l)]);
        for ni in 0..n {
            let qm = &qs.data()[ni * c * l..(ni + 1) * c * l];
            let km = &ks.data()[ni * c * l..(ni + 1) * c * l];
            let vm = &vs.data()[ni * c * l..(ni + 1) * c * l];
            // scores (L, L) = q^T k * scale
            transpose_into(qm, c, l, qt.data_mut());
            pack_a_into(qt.data(), l, c, panel_q.data_mut());
            gemm_packed(
                panel_q.data(),
                km,
                scores.data_mut(),
                l,
                c,
                l,
                Epilogue::Zero,
            );
            scale_and_softmax_rows_in_place(scores.data_mut(), l, scale);
            // out (c, L) = v attn^T, straight into the attended slice.
            transpose_into(scores.data(), l, l, attn_t.data_mut());
            pack_a_into(vm, c, l, panel_v.data_mut());
            gemm_packed(
                panel_v.data(),
                attn_t.data(),
                &mut attended.data_mut()[ni * c * l..(ni + 1) * c * l],
                c,
                l,
                l,
                Epilogue::Zero,
            );
        }
        ws.recycle(qt);
        ws.recycle(scores);
        ws.recycle(attn_t);
        ws.recycle(panel_q);
        ws.recycle(panel_v);
        ws.recycle(qs);
        ws.recycle(ks);
        ws.recycle(vs);

        let projected = self.proj.infer(&attended, ws);
        ws.recycle(attended);
        let mut out = ws.take_uninit(x.shape());
        for (o, (a, b)) in out
            .data_mut()
            .iter_mut()
            .zip(x.data().iter().zip(projected.data()))
        {
            *o = a + b;
        }
        ws.recycle(projected);
        out
    }

    /// Backward pass: accumulates all parameter gradients, returns grad wrt
    /// input.
    ///
    /// # Panics
    ///
    /// Panics when called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward before forward");
        let [n, c, h, w] = cache.shape;
        let l = h * w;
        let scale = 1.0 / (c as f32).sqrt();

        // Residual: grad flows both directly and through proj.
        let grad_attended = self.proj.backward(grad_out);

        let mut grad_q = Tensor::zeros(&[n, c, h, w]);
        let mut grad_k = Tensor::zeros(&[n, c, h, w]);
        let mut grad_v = Tensor::zeros(&[n, c, h, w]);
        for (ni, (qm, km, vm, attn)) in cache.per_item.iter().enumerate() {
            // go is (c, L); out = v attn^T  =>  dv = go attn ; dattn = go^T v
            let go = slice_to_mat(&grad_attended, ni, c, l);
            let dv = matmul(&go, attn);
            let dattn = matmul(&transpose(&go), vm);
            let dscores = softmax_rows_backward(attn, &dattn).scale(scale);
            // scores = q^T k  =>  dq = k dscores^T ; dk = q dscores
            let dq = matmul(km, &transpose(&dscores));
            let dk = matmul(qm, &dscores);
            write_mat(&mut grad_q, &dq, ni, c, l, w);
            write_mat(&mut grad_k, &dk, ni, c, l, w);
            write_mat(&mut grad_v, &dv, ni, c, l, w);
        }

        let gn_q = self.q.backward(&grad_q);
        let gn_k = self.k.backward(&grad_k);
        let gn_v = self.v.backward(&grad_v);
        let grad_normed = gn_q.add(&gn_k).add(&gn_v);
        let grad_x_through_norm = self.norm.backward(&grad_normed);
        grad_out.add(&grad_x_through_norm)
    }

    /// Mutable access to all parameters, in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.norm.params_mut();
        params.extend(self.q.params_mut());
        params.extend(self.k.params_mut());
        params.extend(self.v.params_mut());
        params.extend(self.proj.params_mut());
        params
    }

    /// Shared access to all parameters, in the same stable order as
    /// [`SelfAttention2d::params_mut`].
    pub fn params(&self) -> Vec<&Param> {
        let mut params = self.norm.params();
        params.extend(self.q.params());
        params.extend(self.k.params());
        params.extend(self.v.params());
        params.extend(self.proj.params());
        params
    }
}

fn shape4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(t.shape().len(), 4, "expected NCHW tensor");
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

/// Extracts batch item `ni` as a `(c, L)` matrix. In NCHW layout the
/// item's channel block already is that matrix, so this is one contiguous
/// copy.
fn slice_to_mat(x: &Tensor, ni: usize, c: usize, l: usize) -> Tensor {
    let mut data = vec![0.0f32; c * l];
    data.copy_from_slice(&x.data()[ni * c * l..(ni + 1) * c * l]);
    Tensor::from_vec(&[c, l], data)
}

/// Writes a `(c, L)` matrix into batch item `ni` of an NCHW tensor
/// (contiguous copy, see [`slice_to_mat`]).
fn write_mat(dst: &mut Tensor, mat: &Tensor, ni: usize, c: usize, l: usize, _w: usize) {
    dst.data_mut()[ni * c * l..(ni + 1) * c * l].copy_from_slice(mat.data());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, finite_diff};
    use rand::SeedableRng;

    #[test]
    fn forward_preserves_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut attn = SelfAttention2d::new(4, 2, &mut rng);
        let x = Tensor::randn(&[2, 4, 3, 3], 1.0, &mut rng);
        let y = attn.forward(&x);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut attn = SelfAttention2d::new(4, 2, &mut rng);
        let x = Tensor::randn(&[2, 4, 3, 3], 1.0, &mut rng);
        let mut ws = Workspace::new();
        assert_eq!(attn.infer(&x, &mut ws), attn.forward(&x));
        // Prepacked weights must not change a single bit.
        attn.prepack();
        assert_eq!(attn.infer(&x, &mut ws), attn.forward(&x));
    }

    #[test]
    fn zero_proj_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut attn = SelfAttention2d::new(4, 2, &mut rng);
        for v in attn.proj.weight.value.data_mut() {
            *v = 0.0;
        }
        let x = Tensor::randn(&[1, 4, 2, 2], 1.0, &mut rng);
        let y = attn.forward(&x);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let attn = SelfAttention2d::new(2, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 2, 2], 1.0, &mut rng);
        let w = Tensor::randn(&[1, 2, 2, 2], 1.0, &mut rng);
        let mut live = attn.clone();
        let _ = live.forward(&x);
        let analytic = live.backward(&w);
        let base = attn.clone();
        let w2 = w.clone();
        let numeric = finite_diff(&x, move |t| {
            let mut a = base.clone();
            a.forward(t)
                .data()
                .iter()
                .zip(w2.data())
                .map(|(p, q)| p * q)
                .sum()
        });
        assert_close(&analytic, &numeric, 5e-2, "attention dx");
    }

    #[test]
    fn parameter_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let attn = SelfAttention2d::new(2, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 2, 2], 1.0, &mut rng);
        let mut live = attn.clone();
        let y = live.forward(&x);
        let _ = live.backward(&Tensor::full(y.shape(), 1.0));

        // Check the query projection weight gradient.
        let base = attn.clone();
        let x2 = x.clone();
        let numeric = finite_diff(&attn.q.weight.value, move |wq| {
            let mut a = base.clone();
            a.q.weight.value = wq.clone();
            a.forward(&x2).sum()
        });
        assert_close(&live.q.weight.grad, &numeric, 5e-2, "attention dWq");
    }

    #[test]
    fn params_mut_count() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut attn = SelfAttention2d::new(4, 2, &mut rng);
        // norm (2) + q/k/v/proj (2 each) = 10.
        assert_eq!(attn.params_mut().len(), 10);
    }
}
