use crate::gemm::{
    gemm_packed, matmul, pack_a_into, packed_len, transpose, transpose_into, Epilogue,
};
use crate::precision::bf16_round_slice;
use crate::{Param, Precision, Tensor, Workspace};
use rand::Rng;

/// A fully connected layer `y = x W^T + b` over 2-D inputs `(batch, in)`.
///
/// Used for time-embedding MLPs and the per-residual-block time projection
/// (paper §IV-A: the step index enters each residual block through a
/// sinusoidal embedding followed by learned projections).
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight of shape `(out, in)`.
    pub weight: Param,
    /// Bias of shape `(out,)`.
    pub bias: Param,
    cache_input: Option<Tensor>,
    /// Pre-transposed weight `(in, out)`, populated by [`Linear::prepack`]
    /// once the weights are frozen; `None` while training.
    packed_wt: Option<Vec<f32>>,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform-like normal init.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let std = (2.0 / in_features as f32).sqrt();
        Linear {
            weight: Param::new(Tensor::randn(&[out_features, in_features], std, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cache_input: None,
            packed_wt: None,
        }
    }

    /// Precomputes the transposed weight `(in, out)` so every subsequent
    /// [`Linear::infer`] call skips the per-call transpose.
    ///
    /// Intended for frozen/trained models; a later [`Linear::forward`]
    /// call (resumed training) discards the packed copy so the training
    /// path always computes from the live weights — but mutating
    /// [`Linear::weight`] directly and then calling `infer` leaves the
    /// packed copy stale (re-run `prepack` after by-hand weight edits).
    pub fn prepack(&mut self) {
        self.prepack_with(Precision::Exact);
    }

    /// [`Linear::prepack`] with an explicit weight precision: `Exact`
    /// stores the transposed weights bit-for-bit, `Bf16` rounds each value
    /// to bfloat16 (see [`crate::bf16_round`]; the bias stays f32 and
    /// accumulation is unchanged).
    pub fn prepack_with(&mut self, precision: Precision) {
        let (inf, outf) = (self.in_features(), self.out_features());
        let mut wt = vec![0.0f32; inf * outf];
        transpose_into(self.weight.value.data(), outf, inf, &mut wt);
        if precision == Precision::Bf16 {
            bf16_round_slice(&mut wt);
        }
        self.packed_wt = Some(wt);
    }

    /// `true` once [`Linear::prepack`] has run.
    pub fn is_prepacked(&self) -> bool {
        self.packed_wt.is_some()
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Forward pass over `(batch, in)` input (training mode: caches the
    /// input for `backward`).
    ///
    /// # Panics
    ///
    /// Panics when the input is not 2-D with matching feature count.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        // Training mutates the weights, so any prepacked copy is about to
        // go stale — drop it and compute from the live weights.
        self.packed_wt = None;
        self.cache_input = Some(x.clone());
        self.infer(x, &mut Workspace::new())
    }

    /// Inference forward pass from a shared reference: identical
    /// arithmetic to [`Linear::forward`] (bit-equal outputs) with no
    /// caching; scratch memory comes from `ws`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Linear::forward`].
    pub fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        self.infer_impl(x, ws, false)
    }

    /// Linear layer with SiLU fused into the GEMM epilogue:
    /// bit-identical to [`Linear::infer`] + [`crate::silu_in_place`] (the
    /// biased accumulator value is the same f32 the activation reads),
    /// without the extra pass — the time-embedding MLP's hidden layer.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Linear::forward`].
    pub fn infer_silu(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        self.infer_impl(x, ws, true)
    }

    fn infer_impl(&self, x: &Tensor, ws: &mut Workspace, fuse_silu: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "linear expects 2-D input");
        assert_eq!(x.shape()[1], self.in_features(), "feature mismatch");
        let (batch, inf, outf) = (x.shape()[0], self.in_features(), self.out_features());

        let fresh_wt = match &self.packed_wt {
            Some(_) => None,
            None => {
                let mut wt = ws.take_uninit(&[inf, outf]);
                transpose_into(self.weight.value.data(), outf, inf, wt.data_mut());
                Some(wt)
            }
        };
        let wt: &[f32] = match (&self.packed_wt, &fresh_wt) {
            (Some(p), _) => p,
            (None, Some(t)) => t.data(),
            (None, None) => unreachable!(),
        };

        let mut panel = ws.take_uninit(&[packed_len(batch, inf)]);
        pack_a_into(x.data(), batch, inf, panel.data_mut());
        let mut y = ws.take_uninit(&[batch, outf]);
        let bias = self.bias.value.data();
        let epilogue = if fuse_silu {
            Epilogue::BiasSiluPerCol(bias)
        } else {
            Epilogue::BiasPerCol(bias)
        };
        gemm_packed(panel.data(), wt, y.data_mut(), batch, inf, outf, epilogue);
        ws.recycle(panel);
        if let Some(t) = fresh_wt {
            ws.recycle(t);
        }
        y
    }

    /// Backward pass: accumulates parameter gradients, returns grad wrt
    /// input.
    ///
    /// # Panics
    ///
    /// Panics when called before `forward` or on shape mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_input
            .as_ref()
            .expect("backward before forward")
            .clone();
        assert_eq!(grad_out.shape()[0], x.shape()[0], "batch mismatch");
        assert_eq!(grad_out.shape()[1], self.out_features(), "feature mismatch");

        // dW = grad_out^T x ; db = column sums of grad_out.
        let gw = matmul(&transpose(grad_out), &x);
        self.weight.grad.add_assign(&gw);
        let out = self.out_features();
        for row in grad_out.data().chunks(out) {
            for (g, &v) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *g += v;
            }
        }
        // dx = grad_out W
        matmul(grad_out, &self.weight.value)
    }

    /// Mutable access to the parameters, in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Shared access to the parameters, in the same stable order as
    /// [`Linear::params_mut`].
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, finite_diff};
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut layer = Linear::new(3, 5, &mut rng);
        for b in layer.bias.value.data_mut() {
            *b = 1.0;
        }
        let x = Tensor::zeros(&[2, 3]);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), &[2, 5]);
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn infer_silu_matches_infer_then_silu_bit_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut layer = Linear::new(5, 9, &mut rng);
        for (i, b) in layer.bias.value.data_mut().iter_mut().enumerate() {
            *b = i as f32 * 0.1 - 0.4;
        }
        let x = Tensor::randn(&[3, 5], 1.5, &mut rng);
        let mut ws = Workspace::new();
        for prepacked in [false, true] {
            if prepacked {
                layer.prepack();
            }
            let fused = layer.infer_silu(&x, &mut ws);
            let mut reference = layer.infer(&x, &mut ws);
            crate::silu_in_place(&mut reference);
            assert_eq!(fused, reference, "prepacked={prepacked}");
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut layer = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let _ = layer.forward(&x);
        let grad_out = Tensor::full(&[2, 3], 1.0);
        let analytic = layer.backward(&grad_out);
        let probe = layer.clone();
        let numeric = finite_diff(&x, move |t| {
            let mut l = probe.clone();
            l.forward(t).sum()
        });
        assert_close(&analytic, &numeric, 1e-2, "linear dx");
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let layer = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let mut live = layer.clone();
        let _ = live.forward(&x);
        let _ = live.backward(&Tensor::full(&[2, 3], 1.0));

        let x2 = x.clone();
        let base = layer.clone();
        let numeric = finite_diff(&layer.weight.value, move |w| {
            let mut l = base.clone();
            l.weight.value = w.clone();
            l.forward(&x2).sum()
        });
        assert_close(&live.weight.grad, &numeric, 1e-2, "linear dW");
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Tensor::randn(&[3, 2], 1.0, &mut rng);
        let _ = layer.forward(&x);
        let grad_out = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let _ = layer.backward(&grad_out);
        assert_eq!(layer.bias.grad.data(), &[9.0, 12.0]);
    }

    #[test]
    fn grads_accumulate_across_calls() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Tensor::randn(&[1, 2], 1.0, &mut rng);
        let _ = layer.forward(&x);
        let _ = layer.backward(&Tensor::full(&[1, 2], 1.0));
        let first = layer.bias.grad.clone();
        let _ = layer.forward(&x);
        let _ = layer.backward(&Tensor::full(&[1, 2], 1.0));
        assert_eq!(layer.bias.grad, first.scale(2.0));
    }
}
