use rand::Rng;
use std::fmt;

/// Maximum tensor rank supported by the inline [`Shape`] representation.
/// NCHW feature maps are the deepest shape this substrate uses.
const MAX_DIMS: usize = 4;

/// Inline shape storage: dimensions live in the struct itself so tensor
/// construction (and recycling through [`crate::Workspace`]) performs no
/// heap allocation for the shape.
#[derive(Clone, Copy)]
struct Shape {
    len: u8,
    dims: [usize; MAX_DIMS],
}

impl Shape {
    fn from_slice(shape: &[usize]) -> Self {
        assert!(
            shape.len() <= MAX_DIMS,
            "tensors support at most {MAX_DIMS} dimensions"
        );
        let mut dims = [0usize; MAX_DIMS];
        dims[..shape.len()].copy_from_slice(shape);
        Shape {
            len: shape.len() as u8,
            dims,
        }
    }

    fn as_slice(&self) -> &[usize] {
        &self.dims[..self.len as usize]
    }
}

impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// A dense `f32` tensor in row-major order, used in NCHW layout for feature
/// maps and `(rows, cols)` layout for matrices.
///
/// All operations are shape-checked with panics (this is an internal
/// substrate; shape errors are programming bugs, not recoverable
/// conditions).
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics when the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = checked_len(shape);
        Tensor {
            shape: Shape::from_slice(shape),
            data: vec![0.0; len],
        }
    }

    /// Tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid shape.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = checked_len(shape);
        Tensor {
            shape: Shape::from_slice(shape),
            data: vec![value; len],
        }
    }

    /// Tensor with i.i.d. normal entries of standard deviation `std`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid shape.
    pub fn randn(shape: &[usize], std: f32, rng: &mut impl Rng) -> Self {
        let len = checked_len(shape);
        let data = (0..len).map(|_| std * normal_sample(rng)).collect();
        Tensor {
            shape: Shape::from_slice(shape),
            data,
        }
    }

    /// Builds a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not match the shape product.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let len = checked_len(shape);
        assert_eq!(data.len(), len, "data length does not match shape");
        Tensor {
            shape: Shape::from_slice(shape),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has zero elements (never for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable raw data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshape without copying.
    ///
    /// # Panics
    ///
    /// Panics when the new shape has a different element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let len = checked_len(shape);
        assert_eq!(self.data.len(), len, "reshape changes element count");
        self.shape = Shape::from_slice(shape);
        self
    }

    /// Element at NCHW index.
    ///
    /// # Panics
    ///
    /// Panics for tensors that are not 4-D or out-of-range indices.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx4(n, c, h, w)]
    }

    /// Sets the element at NCHW index.
    ///
    /// # Panics
    ///
    /// Panics for tensors that are not 4-D or out-of-range indices.
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.idx4(n, c, h, w);
        self.data[i] = v;
    }

    fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        assert_eq!(self.shape().len(), 4, "expected 4-D tensor");
        let [sn, sc, sh, sw] = self.shape.dims;
        assert!(n < sn && c < sc && h < sh && w < sw, "index out of range");
        ((n * sc + c) * sh + h) * sw + w
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in sub");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// Scaled copy `self * s`.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Splits a 4-D tensor along the channel axis at `c_split`, returning
    /// `(first, second)` with `c_split` and `C - c_split` channels.
    ///
    /// # Panics
    ///
    /// Panics for non-4-D tensors or `c_split > C`.
    pub fn split_channels(&self, c_split: usize) -> (Tensor, Tensor) {
        assert_eq!(self.shape().len(), 4, "expected 4-D tensor");
        let [n, c, h, w] = self.shape.dims;
        assert!(c_split <= c, "split beyond channel count");
        if c_split == 0 {
            return (Tensor::zeros(&[n, 1, h, w]), self.clone());
        }
        if c_split == c {
            return (self.clone(), Tensor::zeros(&[n, 1, h, w]));
        }
        let hw = h * w;
        let mut a = Tensor::zeros(&[n, c_split, h, w]);
        let mut b = Tensor::zeros(&[n, c - c_split, h, w]);
        for ni in 0..n {
            let src = &self.data[ni * c * hw..(ni + 1) * c * hw];
            a.data[ni * c_split * hw..(ni + 1) * c_split * hw]
                .copy_from_slice(&src[..c_split * hw]);
            b.data[ni * (c - c_split) * hw..(ni + 1) * (c - c_split) * hw]
                .copy_from_slice(&src[c_split * hw..]);
        }
        (a, b)
    }

    /// Concatenates two 4-D tensors along the channel axis.
    ///
    /// # Panics
    ///
    /// Panics when batch or spatial shapes differ.
    pub fn cat_channels(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&cat_channels_shape(self, other));
        cat_channels_into(self, other, &mut out);
        out
    }
}

/// Output shape of [`Tensor::cat_channels`], shared with the
/// workspace-backed concatenation in the U-Net inference path.
///
/// # Panics
///
/// Panics when batch or spatial shapes differ or inputs are not 4-D.
pub(crate) fn cat_channels_shape(a: &Tensor, b: &Tensor) -> [usize; 4] {
    assert_eq!(a.shape().len(), 4, "expected 4-D tensor");
    assert_eq!(b.shape().len(), 4, "expected 4-D tensor");
    let (n, c1, h, w) = (a.shape()[0], a.shape()[1], a.shape()[2], a.shape()[3]);
    let c2 = b.shape()[1];
    assert_eq!(
        (n, h, w),
        (b.shape()[0], b.shape()[2], b.shape()[3]),
        "batch/spatial mismatch in cat"
    );
    [n, c1 + c2, h, w]
}

/// Channel-axis concatenation into a pre-shaped destination tensor.
pub(crate) fn cat_channels_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let [n, c, h, w] = cat_channels_shape(a, b);
    assert_eq!(out.shape(), &[n, c, h, w], "cat destination shape");
    let c1 = a.shape()[1];
    let hw = h * w;
    for ni in 0..n {
        let dst = &mut out.data_mut()[ni * c * hw..(ni + 1) * c * hw];
        dst[..c1 * hw].copy_from_slice(&a.data()[ni * c1 * hw..(ni + 1) * c1 * hw]);
        dst[c1 * hw..].copy_from_slice(&b.data()[ni * (c - c1) * hw..(ni + 1) * (c - c1) * hw]);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor(shape={:?}, mean={:.4}, max_abs={:.4})",
            self.shape,
            self.mean(),
            self.max_abs()
        )
    }
}

fn checked_len(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "empty shape");
    assert!(shape.iter().all(|&d| d > 0), "zero dimension in shape");
    shape.iter().product()
}

/// Box-Muller standard normal sample.
fn normal_sample(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_panics() {
        let _ = Tensor::zeros(&[2, 0, 3]);
    }

    #[test]
    fn construction_and_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        t.set4(1, 2, 3, 4, 7.5);
        assert_eq!(t.at4(1, 2, 3, 4), 7.5);
        assert_eq!(t.data()[119], 7.5);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::full(&[2, 2], 0.5);
        assert_eq!(a.add(&b).data(), &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!(a.sub(&b).data(), &[0.5, 1.5, 2.5, 3.5]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn split_cat_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = Tensor::randn(&[2, 6, 3, 3], 1.0, &mut rng);
        let (a, b) = t.split_channels(2);
        assert_eq!(a.shape(), &[2, 2, 3, 3]);
        assert_eq!(b.shape(), &[2, 4, 3, 3]);
        assert_eq!(a.cat_channels(&b), t);
    }

    #[test]
    fn split_at_boundaries() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = Tensor::randn(&[2, 3, 2, 2], 1.0, &mut rng);
        let (a, b) = t.split_channels(0);
        assert_eq!(a.shape(), &[2, 1, 2, 2]);
        assert_eq!(b, t);
        let (a, b) = t.split_channels(3);
        assert_eq!(a, t);
        assert_eq!(b.shape(), &[2, 1, 2, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        let _ = a.add(&b);
    }
}
