use crate::SquishError;
use dp_geometry::{BitGrid, Coord, GeometryError, Layout, Rect};

/// A squish pattern: binary topology matrix plus geometric Δ vectors
/// (paper Fig. 2).
///
/// The topology matrix entry `(i, j)` says whether the cell between scan
/// lines `i` and `i+1` (x axis) and `j` and `j+1` (y axis) is covered by a
/// shape; `dx[i]` and `dy[j]` are the physical interval lengths in
/// nanometres. The representation is lossless: [`SquishPattern::decode`]
/// reconstructs the layout exactly (up to rectangle decomposition).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SquishPattern {
    topology: BitGrid,
    dx: Vec<Coord>,
    dy: Vec<Coord>,
}

impl SquishPattern {
    /// Builds a squish pattern from parts, validating shape and positivity.
    ///
    /// # Errors
    ///
    /// * [`SquishError::DeltaShapeMismatch`] when `dx`/`dy` lengths differ
    ///   from the topology width/height,
    /// * [`SquishError::NonPositiveDelta`] when an interval is `<= 0`.
    pub fn new(topology: BitGrid, dx: Vec<Coord>, dy: Vec<Coord>) -> Result<Self, SquishError> {
        if dx.len() != topology.width() || dy.len() != topology.height() {
            return Err(SquishError::DeltaShapeMismatch {
                cols: topology.width(),
                rows: topology.height(),
                dx_len: dx.len(),
                dy_len: dy.len(),
            });
        }
        for (index, &value) in dx.iter().enumerate() {
            if value <= 0 {
                return Err(SquishError::NonPositiveDelta {
                    axis: "x",
                    index,
                    value,
                });
            }
        }
        for (index, &value) in dy.iter().enumerate() {
            if value <= 0 {
                return Err(SquishError::NonPositiveDelta {
                    axis: "y",
                    index,
                    value,
                });
            }
        }
        Ok(SquishPattern { topology, dx, dy })
    }

    /// Encodes a layout into its squish pattern by extracting scan lines
    /// along every polygon edge and rasterizing the cells in between.
    pub fn encode(layout: &Layout) -> Self {
        let (xs, ys) = layout.scan_lines();
        let topology = layout.rasterize(&xs, &ys);
        let dx = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let dy = ys.windows(2).map(|w| w[1] - w[0]).collect();
        SquishPattern { topology, dx, dy }
    }

    /// The topology matrix.
    pub fn topology(&self) -> &BitGrid {
        &self.topology
    }

    /// Interval lengths along x.
    pub fn dx(&self) -> &[Coord] {
        &self.dx
    }

    /// Interval lengths along y.
    pub fn dy(&self) -> &[Coord] {
        &self.dy
    }

    /// Replaces the geometric vectors, keeping the topology. This is the
    /// *assign* step of the legalization phase (paper Fig. 4, right).
    ///
    /// # Errors
    ///
    /// Same validation as [`SquishPattern::new`].
    pub fn with_deltas(&self, dx: Vec<Coord>, dy: Vec<Coord>) -> Result<Self, SquishError> {
        SquishPattern::new(self.topology.clone(), dx, dy)
    }

    /// Physical width of the pattern window (sum of Δx).
    pub fn width(&self) -> Coord {
        self.dx.iter().sum()
    }

    /// Physical height of the pattern window (sum of Δy).
    pub fn height(&self) -> Coord {
        self.dy.iter().sum()
    }

    /// Scan-line coordinates along x (prefix sums of Δx, starting at 0).
    pub fn x_scan_lines(&self) -> Vec<Coord> {
        std::iter::once(0)
            .chain(self.dx.iter().scan(0, |acc, &d| {
                *acc += d;
                Some(*acc)
            }))
            .collect()
    }

    /// Scan-line coordinates along y (prefix sums of Δy, starting at 0).
    pub fn y_scan_lines(&self) -> Vec<Coord> {
        std::iter::once(0)
            .chain(self.dy.iter().scan(0, |acc, &d| {
                *acc += d;
                Some(*acc)
            }))
            .collect()
    }

    /// Decodes the pattern back into a layout of merged rectangles.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] when the Δ vectors describe a degenerate
    /// window (cannot happen for patterns built through [`SquishPattern::new`]).
    pub fn decode(&self) -> Result<Layout, GeometryError> {
        let xs = self.x_scan_lines();
        let ys = self.y_scan_lines();
        let window = Rect::new(0, 0, self.width(), self.height())?;
        let mut layout = Layout::new(window);
        for row in 0..self.topology.height() {
            let mut col = 0;
            while col < self.topology.width() {
                if self.topology.get(col, row) {
                    let start = col;
                    while col < self.topology.width() && self.topology.get(col, row) {
                        col += 1;
                    }
                    layout.push(Rect::new(xs[start], ys[row], xs[col], ys[row + 1])?);
                } else {
                    col += 1;
                }
            }
        }
        Ok(layout.normalized())
    }

    /// Complexity `(c_x, c_y)`: the number of scan lines minus one along
    /// each axis (paper §II-C). For an encoded pattern this is simply the
    /// topology shape.
    pub fn complexity(&self) -> (usize, usize) {
        (self.topology.width(), self.topology.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_layout() -> Layout {
        let mut l = Layout::new(Rect::new(0, 0, 2048, 2048).unwrap());
        l.push(Rect::new(100, 200, 600, 1800).unwrap());
        l.push(Rect::new(900, 200, 1400, 1800).unwrap());
        l.push(Rect::new(1600, 500, 2000, 900).unwrap());
        l
    }

    #[test]
    fn encode_shapes() {
        let p = SquishPattern::encode(&sample_layout());
        assert_eq!(p.width(), 2048);
        assert_eq!(p.height(), 2048);
        assert_eq!(p.dx().len(), p.topology().width());
        assert_eq!(p.dy().len(), p.topology().height());
    }

    #[test]
    fn round_trip_is_lossless() {
        let l = sample_layout();
        let p = SquishPattern::encode(&l);
        let restored = p.decode().unwrap();
        assert_eq!(restored.normalized(), l.normalized());
        assert_eq!(restored.shape_area(), l.shape_area());
    }

    #[test]
    fn empty_layout_round_trip() {
        let l = Layout::new(Rect::new(0, 0, 100, 100).unwrap());
        let p = SquishPattern::encode(&l);
        assert_eq!(p.complexity(), (1, 1));
        assert!(p.decode().unwrap().is_empty());
    }

    #[test]
    fn new_validates_shape() {
        let g = BitGrid::new(3, 2).unwrap();
        assert!(matches!(
            SquishPattern::new(g.clone(), vec![1, 1], vec![1, 1]),
            Err(SquishError::DeltaShapeMismatch { .. })
        ));
        assert!(matches!(
            SquishPattern::new(g, vec![1, 0, 1], vec![1, 1]),
            Err(SquishError::NonPositiveDelta { axis: "x", .. })
        ));
    }

    #[test]
    fn with_deltas_rescales_geometry() {
        let l = sample_layout();
        let p = SquishPattern::encode(&l);
        let dx: Vec<Coord> = p.dx().iter().map(|_| 10).collect();
        let dy: Vec<Coord> = p.dy().iter().map(|_| 20).collect();
        let q = p.with_deltas(dx, dy).unwrap();
        assert_eq!(q.width(), 10 * p.dx().len() as Coord);
        assert_eq!(q.topology(), p.topology());
        // Same topology, different geometry: shape count is preserved.
        let a = p.decode().unwrap();
        let b = q.decode().unwrap();
        assert_eq!(a.normalized().len(), b.normalized().len());
    }

    #[test]
    fn scan_lines_are_prefix_sums() {
        let g = BitGrid::new(3, 2).unwrap();
        let p = SquishPattern::new(g, vec![5, 10, 15], vec![7, 3]).unwrap();
        assert_eq!(p.x_scan_lines(), vec![0, 5, 15, 30]);
        assert_eq!(p.y_scan_lines(), vec![0, 7, 10]);
    }

    /// Random Manhattan layouts: place k non-overlapping rects on a
    /// coarse lattice to guarantee disjointness.
    fn random_layout(seed: u64, k: usize) -> Layout {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut layout = Layout::new(Rect::new(0, 0, 1000, 1000).unwrap());
        for _ in 0..k {
            let cx = rng.gen_range(0i64..9) * 100;
            let cy = rng.gen_range(0i64..9) * 100;
            let w = rng.gen_range(20i64..90);
            let h = rng.gen_range(20i64..90);
            layout.push(Rect::new(cx + 5, cy + 5, cx + 5 + w, cy + 5 + h).unwrap());
        }
        layout.normalized()
    }

    proptest! {
        #[test]
        fn random_round_trips(seed in any::<u64>(), k in 1usize..8) {
            let l = random_layout(seed, k);
            let p = SquishPattern::encode(&l);
            let restored = p.decode().unwrap();
            prop_assert_eq!(restored.normalized(), l.normalized());
        }

        #[test]
        fn deltas_are_positive_and_sum_to_window(seed in any::<u64>(), k in 1usize..8) {
            let l = random_layout(seed, k);
            let p = SquishPattern::encode(&l);
            prop_assert!(p.dx().iter().all(|&d| d > 0));
            prop_assert!(p.dy().iter().all(|&d| d > 0));
            prop_assert_eq!(p.width(), l.window().width());
            prop_assert_eq!(p.height(), l.window().height());
        }
    }
}
