use std::fmt;

/// Error type for squish-pattern encoding, extension and folding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SquishError {
    /// The Δ vectors do not match the topology matrix shape.
    DeltaShapeMismatch {
        /// Topology width (columns).
        cols: usize,
        /// Topology height (rows).
        rows: usize,
        /// Length of Δx supplied.
        dx_len: usize,
        /// Length of Δy supplied.
        dy_len: usize,
    },
    /// A Δ interval is non-positive.
    NonPositiveDelta {
        /// Axis name, `"x"` or `"y"`.
        axis: &'static str,
        /// Offending index.
        index: usize,
        /// Offending value.
        value: i64,
    },
    /// A pattern is too complex to extend to the requested side length.
    TooComplex {
        /// Current side (rows or columns).
        have: usize,
        /// Requested side.
        want: usize,
    },
    /// The matrix side is not divisible by the fold patch size.
    NotFoldable {
        /// Matrix side length.
        side: usize,
        /// Patch side `√C`.
        patch: usize,
    },
    /// Channel count is not a perfect square.
    ChannelsNotSquare {
        /// Requested channel count.
        channels: usize,
    },
    /// An interval could not be split further during extension (length 1 nm
    /// intervals cannot be subdivided on the integer grid).
    UnsplittableInterval,
}

impl fmt::Display for SquishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SquishError::DeltaShapeMismatch {
                cols,
                rows,
                dx_len,
                dy_len,
            } => write!(
                f,
                "topology is {cols}x{rows} but |dx|={dx_len}, |dy|={dy_len}"
            ),
            SquishError::NonPositiveDelta { axis, index, value } => {
                write!(f, "delta-{axis}[{index}] = {value} must be positive")
            }
            SquishError::TooComplex { have, want } => {
                write!(f, "pattern side {have} exceeds target side {want}")
            }
            SquishError::NotFoldable { side, patch } => {
                write!(
                    f,
                    "matrix side {side} is not divisible by patch side {patch}"
                )
            }
            SquishError::ChannelsNotSquare { channels } => {
                write!(f, "channel count {channels} is not a perfect square")
            }
            SquishError::UnsplittableInterval => {
                write!(f, "all intervals have unit length; cannot extend further")
            }
        }
    }
}

impl std::error::Error for SquishError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SquishError::TooComplex { have: 40, want: 32 };
        assert!(e.to_string().contains("40"));
        let e = SquishError::NonPositiveDelta {
            axis: "x",
            index: 3,
            value: 0,
        };
        assert!(e.to_string().contains("delta-x[3]"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync>() {}
        assert_traits::<SquishError>();
    }
}
