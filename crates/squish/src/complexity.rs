//! Pattern complexity (paper §II-C, Definition 1).
//!
//! The complexity of a pattern is `(c_x, c_y)`: the number of scan lines
//! minus one along each axis. An encoded squish pattern has this directly
//! as its topology shape, but *generated* topologies are padded to a fixed
//! side (see [`crate::extend_to_side`]) and may contain adjacent duplicate
//! rows/columns that do not correspond to real scan lines. This module
//! squishes a grid to its canonical core before measuring.

use dp_geometry::BitGrid;

/// Removes adjacent duplicate rows and columns until a fixpoint, yielding
/// the canonical squished core of a topology matrix.
///
/// ```
/// use dp_geometry::BitGrid;
/// use dp_squish::squish_to_core;
///
/// let g = BitGrid::from_ascii(
///     "..##
///      ..##
///      .#..
///      .#..",
/// ).unwrap();
/// let core = squish_to_core(&g);
/// assert_eq!((core.width(), core.height()), (3, 2));
/// ```
pub fn squish_to_core(grid: &BitGrid) -> BitGrid {
    let mut current = grid.clone();
    loop {
        let rows = current.duplicate_row_indices();
        let cols = current.duplicate_column_indices();
        if rows.is_empty() && cols.is_empty() {
            return current;
        }
        current = current.remove_rows_cols(&rows, &cols);
    }
}

/// Complexity `(c_x, c_y)` of a topology matrix: the shape of its squished
/// core. This equals the number of scan lines minus one along each axis of
/// the smallest squish pattern describing the same geometry.
pub fn complexity_of_grid(grid: &BitGrid) -> (usize, usize) {
    let core = squish_to_core(grid);
    (core.width(), core.height())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_squishes_to_unit() {
        let g = BitGrid::new(8, 8).unwrap();
        assert_eq!(complexity_of_grid(&g), (1, 1));
        let mut full = BitGrid::new(8, 8).unwrap();
        full.fill_cells(0, 0, 8, 8);
        assert_eq!(complexity_of_grid(&full), (1, 1));
    }

    #[test]
    fn already_squished_is_fixpoint() {
        let g = BitGrid::from_ascii(
            "#.
             .#",
        )
        .unwrap();
        assert_eq!(squish_to_core(&g), g);
        assert_eq!(complexity_of_grid(&g), (2, 2));
    }

    #[test]
    fn row_and_column_duplicates_collapse() {
        let g = BitGrid::from_ascii(
            "##..
             ##..
             ..##
             ..##",
        )
        .unwrap();
        assert_eq!(complexity_of_grid(&g), (2, 2));
    }

    #[test]
    fn iterative_collapse_needs_fixpoint() {
        // Removing columns can create new duplicate rows; check the loop
        // reaches the true core.
        let g = BitGrid::from_ascii(
            "#.#
             #.#
             ###",
        )
        .unwrap();
        let core = squish_to_core(&g);
        // Row 2 duplicates row 1; after removal rows are ### and #.#,
        // columns 0 and 2 differ from column 1.
        assert_eq!((core.width(), core.height()), (3, 2));
    }

    #[test]
    fn complexity_matches_encode_of_decoded_layout() {
        use crate::SquishPattern;
        let g = BitGrid::from_ascii(
            "#..#
             #..#
             ....
             ####",
        )
        .unwrap();
        let p = SquishPattern::new(g.clone(), vec![10; 4], vec![10; 4]).unwrap();
        let reencoded = SquishPattern::encode(&p.decode().unwrap());
        let (cx, cy) = complexity_of_grid(&g);
        assert_eq!(reencoded.complexity(), (cx, cy));
    }
}
