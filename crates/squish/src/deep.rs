//! Deep Squish pattern representation (paper §III-B, Fig. 5).
//!
//! Diffusion-model cost scales with spatial input size far more than with
//! channel count, so DiffPattern *folds* the `√C·M x √C·M` topology matrix
//! into a `C x M x M` binary tensor: each `√C x √C` patch becomes one
//! spatial position with `C` channels, every bit keeping equal weight
//! (unlike naive bit-packing, which assigns exponentially unbalanced powers
//! to the bits — the pitfall Fig. 5 illustrates). Folding is lossless;
//! [`DeepSquishTensor::unfold`] restores the matrix exactly.

use crate::SquishError;
use dp_geometry::BitGrid;

/// A folded binary topology tensor of shape `C x M x M`.
///
/// Channel `ch = pi * √C + pj` holds the bit at offset `(pi, pj)` within
/// each patch, where `pi` indexes patch rows and `pj` patch columns.
///
/// ```
/// use dp_geometry::BitGrid;
/// use dp_squish::DeepSquishTensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let matrix = BitGrid::from_ascii(
///     "#..#
///      ....
///      .##.
///      #..#",
/// )?;
/// let tensor = DeepSquishTensor::fold(&matrix, 4)?;
/// assert_eq!(tensor.channels(), 4);
/// assert_eq!(tensor.side(), 2);
/// assert_eq!(tensor.unfold(), matrix);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeepSquishTensor {
    channels: usize,
    side: usize,
    /// Channel-major data: `data[ch][m * side + n]` for spatial `(n, m)`
    /// with row `m` counted bottom-up like [`BitGrid`].
    data: Vec<bool>,
}

impl DeepSquishTensor {
    /// Folds a square topology matrix into a `channels x M x M` tensor.
    ///
    /// # Errors
    ///
    /// * [`SquishError::ChannelsNotSquare`] when `channels` is not a perfect
    ///   square,
    /// * [`SquishError::NotFoldable`] when the matrix is not square or its
    ///   side is not divisible by `√channels`.
    pub fn fold(matrix: &BitGrid, channels: usize) -> Result<Self, SquishError> {
        let patch = int_sqrt(channels).ok_or(SquishError::ChannelsNotSquare { channels })?;
        if matrix.width() != matrix.height() {
            return Err(SquishError::NotFoldable {
                side: matrix.width().max(matrix.height()),
                patch,
            });
        }
        if !matrix.width().is_multiple_of(patch) {
            return Err(SquishError::NotFoldable {
                side: matrix.width(),
                patch,
            });
        }
        let side = matrix.width() / patch;
        let mut data = vec![false; channels * side * side];
        for m in 0..side {
            for n in 0..side {
                for pi in 0..patch {
                    for pj in 0..patch {
                        let ch = pi * patch + pj;
                        let bit = matrix.get(n * patch + pj, m * patch + pi);
                        data[ch * side * side + m * side + n] = bit;
                    }
                }
            }
        }
        Ok(DeepSquishTensor {
            channels,
            side,
            data,
        })
    }

    /// Builds a tensor directly from channel-major bits.
    ///
    /// # Errors
    ///
    /// * [`SquishError::ChannelsNotSquare`] for a non-square channel count,
    /// * [`SquishError::DeltaShapeMismatch`] is never returned; shape errors
    ///   surface as [`SquishError::NotFoldable`] with the offending side.
    pub fn from_bits(channels: usize, side: usize, data: Vec<bool>) -> Result<Self, SquishError> {
        let patch = int_sqrt(channels).ok_or(SquishError::ChannelsNotSquare { channels })?;
        if data.len() != channels * side * side || side == 0 {
            return Err(SquishError::NotFoldable { side, patch });
        }
        Ok(DeepSquishTensor {
            channels,
            side,
            data,
        })
    }

    /// Number of channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial side length `M`.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Patch side `√C`.
    pub fn patch(&self) -> usize {
        int_sqrt(self.channels).expect("validated at construction")
    }

    /// The bit at channel `ch`, spatial position `(n, m)` (column, row).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, ch: usize, n: usize, m: usize) -> bool {
        assert!(ch < self.channels && n < self.side && m < self.side);
        self.data[ch * self.side * self.side + m * self.side + n]
    }

    /// Sets the bit at channel `ch`, spatial position `(n, m)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, ch: usize, n: usize, m: usize, value: bool) {
        assert!(ch < self.channels && n < self.side && m < self.side);
        self.data[ch * self.side * self.side + m * self.side + n] = value;
    }

    /// Channel-major raw bits.
    pub fn bits(&self) -> &[bool] {
        &self.data
    }

    /// Mutable channel-major raw bits: any value combination is a valid
    /// tensor of the same shape, so in-place mutation cannot break the
    /// shape invariants. The diffusion sampler flips entries in place to
    /// keep its denoising loop allocation-free.
    pub fn bits_mut(&mut self) -> &mut [bool] {
        &mut self.data
    }

    /// Total number of bits (`C * M * M`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no bits (impossible for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Unfolds back into the `√C·M x √C·M` topology matrix (the exact
    /// inverse of [`DeepSquishTensor::fold`]).
    pub fn unfold(&self) -> BitGrid {
        let patch = self.patch();
        let full = self.side * patch;
        let mut matrix = BitGrid::new(full, full).expect("side > 0");
        for m in 0..self.side {
            for n in 0..self.side {
                for pi in 0..patch {
                    for pj in 0..patch {
                        let ch = pi * patch + pj;
                        if self.get(ch, n, m) {
                            matrix.set(n * patch + pj, m * patch + pi, true);
                        }
                    }
                }
            }
        }
        matrix
    }

    /// Converts the bits to an `f32` buffer in channel-major layout
    /// (`1.0` filled / `0.0` empty), the input format of the U-Net.
    pub fn to_f32(&self) -> Vec<f32> {
        self.data
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect()
    }

    /// Builds a tensor by thresholding an `f32` buffer at `0.5`.
    ///
    /// # Errors
    ///
    /// Same as [`DeepSquishTensor::from_bits`].
    pub fn from_f32(channels: usize, side: usize, values: &[f32]) -> Result<Self, SquishError> {
        DeepSquishTensor::from_bits(channels, side, values.iter().map(|&v| v >= 0.5).collect())
    }
}

fn int_sqrt(n: usize) -> Option<usize> {
    let r = (n as f64).sqrt().round() as usize;
    (r * r == n && n > 0).then_some(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fold_unfold_identity() {
        let m = BitGrid::from_ascii(
            "#..#
             .##.
             .##.
             #..#",
        )
        .unwrap();
        for channels in [1, 4, 16] {
            let t = DeepSquishTensor::fold(&m, channels).unwrap();
            assert_eq!(t.unfold(), m, "channels={channels}");
        }
    }

    #[test]
    fn channel_mapping_matches_patch_offsets() {
        // 2x2 matrix, C=4: each cell lands in its own channel at (0,0).
        let m = BitGrid::from_ascii(
            "#.
             .#",
        )
        .unwrap();
        let t = DeepSquishTensor::fold(&m, 4).unwrap();
        assert_eq!(t.side(), 1);
        // ASCII: first line is the TOP row, so filled cells are (0,1) and
        // (1,0). (1,0): patch offset (pi=0, pj=1) -> channel 1.
        assert!(t.get(1, 0, 0));
        // (0,1): (pi=1, pj=0) -> channel 2.
        assert!(t.get(2, 0, 0));
        assert!(!t.get(0, 0, 0));
        assert!(!t.get(3, 0, 0));
    }

    #[test]
    fn rejects_bad_channel_counts() {
        let m = BitGrid::new(4, 4).unwrap();
        assert!(matches!(
            DeepSquishTensor::fold(&m, 3),
            Err(SquishError::ChannelsNotSquare { channels: 3 })
        ));
        assert!(matches!(
            DeepSquishTensor::fold(&m, 0),
            Err(SquishError::ChannelsNotSquare { .. })
        ));
    }

    #[test]
    fn rejects_indivisible_side() {
        let m = BitGrid::new(6, 6).unwrap();
        assert!(matches!(
            DeepSquishTensor::fold(&m, 16),
            Err(SquishError::NotFoldable { side: 6, patch: 4 })
        ));
    }

    #[test]
    fn rejects_non_square_matrix() {
        let m = BitGrid::new(4, 8).unwrap();
        assert!(DeepSquishTensor::fold(&m, 4).is_err());
    }

    #[test]
    fn f32_round_trip() {
        let m = BitGrid::from_ascii(
            "##..
             ....
             ..##
             #..#",
        )
        .unwrap();
        let t = DeepSquishTensor::fold(&m, 4).unwrap();
        let f = t.to_f32();
        let back = DeepSquishTensor::from_f32(4, t.side(), &f).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn bit_count_is_preserved() {
        let m = BitGrid::from_ascii(
            "#.#.
             .#.#
             ####
             ....",
        )
        .unwrap();
        let t = DeepSquishTensor::fold(&m, 4).unwrap();
        let ones = t.bits().iter().filter(|&&b| b).count();
        assert_eq!(ones, m.count_ones());
    }

    proptest! {
        #[test]
        fn random_fold_round_trips(seed in any::<u64>(), side_patches in 1usize..6) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for channels in [1usize, 4, 9, 16] {
                let patch = (channels as f64).sqrt() as usize;
                let full = side_patches * patch;
                let mut m = BitGrid::new(full, full).unwrap();
                for r in 0..full {
                    for c in 0..full {
                        m.set(c, r, rng.gen_bool(0.4));
                    }
                }
                let t = DeepSquishTensor::fold(&m, channels).unwrap();
                prop_assert_eq!(t.unfold(), m);
            }
        }
    }
}
