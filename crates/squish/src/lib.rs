//! Squish and Deep Squish pattern representations.
//!
//! The *squish pattern* (paper §II-B, Fig. 2; Gennari & Lai, US 8,832,621)
//! losslessly encodes a rectilinear layout as a small binary **topology
//! matrix** plus two **geometric vectors** Δx and Δy holding the interval
//! lengths between adjacent scan lines. DiffPattern generates topologies
//! with a discrete diffusion model and re-assigns legal Δ vectors with a
//! white-box solver; this crate provides the representation layer both of
//! those sit on:
//!
//! * [`SquishPattern`] — encode a [`Layout`] into topology + Δ vectors and
//!   decode back, losslessly,
//! * [`extend_to_side`] — the fixed-side extension of Yang et al. (paper
//!   ref. \[14\]) that pads every pattern to a square matrix of a common
//!   side length so a batch can be stacked into a tensor,
//! * [`DeepSquishTensor`] — the paper's §III-B contribution: fold a
//!   `√C·M x √C·M` topology matrix into a `C x M x M` binary tensor
//!   (space-to-depth) so the diffusion U-Net sees a smaller spatial extent
//!   at more channels,
//! * [`complexity_of_grid`] — the pattern complexity `(c_x, c_y)` used by
//!   the diversity metric (paper Definition 1).
//!
//! # Example: lossless round trip
//!
//! ```
//! use dp_geometry::{Layout, Rect};
//! use dp_squish::SquishPattern;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut layout = Layout::new(Rect::new(0, 0, 2048, 2048)?);
//! layout.push(Rect::new(100, 200, 600, 1800)?);
//! layout.push(Rect::new(900, 200, 1400, 1800)?);
//!
//! let pattern = SquishPattern::encode(&layout);
//! let restored = pattern.decode()?;
//! assert_eq!(restored.normalized(), layout.normalized());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod complexity;
mod deep;
mod error;
mod extend;
mod pattern;

pub use complexity::{complexity_of_grid, squish_to_core};
pub use deep::DeepSquishTensor;
pub use error::SquishError;
pub use extend::{extend_to_side, ExtendReport};
pub use pattern::SquishPattern;

pub use dp_geometry::{BitGrid, Coord, Layout, Rect};
