//! Fixed-side extension of squish patterns (paper ref. \[14\]).
//!
//! Different layout clips squish to topology matrices of different sizes.
//! To train a pixel-based model the paper extends every pattern to a square
//! matrix with a fixed side length: extra scan lines are inserted by
//! *splitting* existing intervals, which duplicates the corresponding
//! topology column/row and splits its Δ value — a lossless operation, since
//! the duplicated cells describe exactly the same geometry.

use crate::{SquishError, SquishPattern};
use dp_geometry::{BitGrid, Coord};

/// Statistics of one extension, useful for dataset reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendReport {
    /// Columns added along x.
    pub cols_added: usize,
    /// Rows added along y.
    pub rows_added: usize,
}

/// Extends `pattern` to a `side x side` topology matrix by repeatedly
/// splitting the largest interval on each axis.
///
/// The split interval's Δ is divided as evenly as the integer grid allows
/// and the topology column/row is duplicated, so the decoded geometry is
/// unchanged (see the round-trip property test).
///
/// # Errors
///
/// * [`SquishError::TooComplex`] when the pattern already has more than
///   `side` scan intervals on either axis,
/// * [`SquishError::UnsplittableInterval`] when every interval has unit
///   length so no further scan line fits on the integer grid.
pub fn extend_to_side(
    pattern: &SquishPattern,
    side: usize,
) -> Result<(SquishPattern, ExtendReport), SquishError> {
    let topo = pattern.topology();
    if topo.width() > side {
        return Err(SquishError::TooComplex {
            have: topo.width(),
            want: side,
        });
    }
    if topo.height() > side {
        return Err(SquishError::TooComplex {
            have: topo.height(),
            want: side,
        });
    }

    let (dx, col_dup) = split_axis(pattern.dx(), side)?;
    let (dy, row_dup) = split_axis(pattern.dy(), side)?;

    let report = ExtendReport {
        cols_added: side - topo.width(),
        rows_added: side - topo.height(),
    };

    let mut grid = BitGrid::new(side, side).expect("side > 0 because topo is non-empty");
    for (new_row, &old_row) in row_dup.iter().enumerate() {
        for (new_col, &old_col) in col_dup.iter().enumerate() {
            if topo.get(old_col, old_row) {
                grid.set(new_col, new_row, true);
            }
        }
    }

    Ok((SquishPattern::new(grid, dx, dy)?, report))
}

/// Splits the interval vector until it has `target` entries; returns the new
/// vector and, for each new index, the originating old index.
fn split_axis(deltas: &[Coord], target: usize) -> Result<(Vec<Coord>, Vec<usize>), SquishError> {
    // Work on (value, old_index) pairs, splitting the largest value.
    let mut parts: Vec<(Coord, usize)> = deltas.iter().copied().zip(0..deltas.len()).collect();
    while parts.len() < target {
        let (pos, &(value, old)) = parts
            .iter()
            .enumerate()
            .max_by_key(|(_, (v, _))| *v)
            .expect("non-empty deltas");
        if value < 2 {
            return Err(SquishError::UnsplittableInterval);
        }
        let left = value / 2;
        let right = value - left;
        parts[pos] = (left, old);
        parts.insert(pos + 1, (right, old));
    }
    Ok(parts.into_iter().unzip())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geometry::{Layout, Rect};
    use proptest::prelude::*;

    fn sample_pattern() -> SquishPattern {
        let mut l = Layout::new(Rect::new(0, 0, 2048, 2048).unwrap());
        l.push(Rect::new(100, 200, 600, 1800).unwrap());
        l.push(Rect::new(900, 200, 1400, 1800).unwrap());
        SquishPattern::encode(&l)
    }

    #[test]
    fn extends_to_requested_side() {
        let p = sample_pattern();
        let (q, report) = extend_to_side(&p, 16).unwrap();
        assert_eq!(q.topology().width(), 16);
        assert_eq!(q.topology().height(), 16);
        assert_eq!(report.cols_added, 16 - p.topology().width());
        assert_eq!(report.rows_added, 16 - p.topology().height());
    }

    #[test]
    fn extension_is_lossless() {
        let p = sample_pattern();
        let (q, _) = extend_to_side(&p, 32).unwrap();
        assert_eq!(
            q.decode().unwrap().normalized(),
            p.decode().unwrap().normalized()
        );
        assert_eq!(q.width(), p.width());
        assert_eq!(q.height(), p.height());
    }

    #[test]
    fn too_complex_is_rejected() {
        let p = sample_pattern();
        let err = extend_to_side(&p, 2).unwrap_err();
        assert!(matches!(err, SquishError::TooComplex { .. }));
    }

    #[test]
    fn unsplittable_is_rejected() {
        let g = BitGrid::new(2, 2).unwrap();
        let p = SquishPattern::new(g, vec![1, 1], vec![1, 1]).unwrap();
        assert!(matches!(
            extend_to_side(&p, 4),
            Err(SquishError::UnsplittableInterval)
        ));
    }

    #[test]
    fn exact_side_is_noop() {
        let p = sample_pattern();
        let w = p.topology().width().max(p.topology().height());
        let (q, report) = extend_to_side(&p, w).unwrap();
        assert_eq!(
            report.cols_added + report.rows_added,
            w * 2 - p.topology().width() - p.topology().height()
        );
        assert_eq!(q.width(), p.width());
    }

    #[test]
    fn split_axis_preserves_sum_and_order() {
        let (parts, origin) = split_axis(&[100, 1, 7], 8).unwrap();
        assert_eq!(parts.iter().sum::<Coord>(), 108);
        assert_eq!(parts.len(), 8);
        assert_eq!(origin.len(), 8);
        // Origins must be non-decreasing (splits stay in place).
        assert!(origin.windows(2).all(|w| w[0] <= w[1]));
    }

    proptest! {
        #[test]
        fn random_extension_round_trips(seed in any::<u64>(), side in 8usize..24) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut layout = Layout::new(Rect::new(0, 0, 1000, 1000).unwrap());
            for _ in 0..3 {
                let cx = rng.gen_range(0i64..8) * 120;
                let cy = rng.gen_range(0i64..8) * 120;
                layout.push(Rect::new(cx + 10, cy + 10, cx + 80, cy + 90).unwrap());
            }
            let p = SquishPattern::encode(&layout.normalized());
            prop_assume!(p.topology().width() <= side && p.topology().height() <= side);
            let (q, _) = extend_to_side(&p, side).unwrap();
            prop_assert_eq!(q.decode().unwrap().normalized(), p.decode().unwrap().normalized());
            prop_assert_eq!(q.width(), p.width());
            prop_assert_eq!(q.height(), p.height());
        }
    }
}
