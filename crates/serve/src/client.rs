//! A small blocking client for the `dpserve` protocol — what the test
//! suite, the CI smoke example and the load generator talk through.
//!
//! One [`Client`] owns one keep-alive connection; `generate` calls can
//! be issued back to back (pipelining is exercised by the raw helpers
//! in `tests/serve.rs`, not this convenience layer).

use crate::http::{Conn, HttpError};
use crate::json::{self, Json};
use crate::proto::{self, ProtoError};
use diffpattern::{Generated, PipelineReport, RequestSpec};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Everything a finished generation stream said, decoded back into
/// in-process types — directly comparable against a local
/// [`diffpattern::PatternService::generate`].
#[derive(Debug)]
pub struct WireOutcome {
    /// Streamed items in arrival (completion) order.
    pub items: Vec<Generated>,
    /// The aggregated pipeline report from the closing record.
    pub report: PipelineReport,
    /// `count` as the server echoed it.
    pub requested: usize,
    /// Whether the server attributed the shortfall to deadline expiry.
    pub deadline_expired: bool,
    /// A structural generation error, if any lane hit one.
    pub error: Option<String>,
}

/// How a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Http(HttpError),
    /// The server refused the request; `(status, code, message)` from
    /// the structured error body.
    Rejected {
        /// HTTP status.
        status: u16,
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// A stream record did not decode.
    Protocol(ProtoError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Http(e) => write!(f, "http error: {e}"),
            ClientError::Rejected {
                status,
                code,
                message,
            } => write!(f, "server rejected request ({status} {code}): {message}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Http(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Http(HttpError::from(e))
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<json::ParseError> for ClientError {
    fn from(e: json::ParseError) -> Self {
        ClientError::Protocol(ProtoError::Json(e))
    }
}

/// A blocking dpserve client over one keep-alive connection.
#[derive(Debug)]
pub struct Client {
    conn: Conn<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Forwards the connect error.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let socket = TcpStream::connect(addr)?;
        socket.set_nodelay(true)?;
        Ok(Client {
            conn: Conn::new(socket),
        })
    }

    /// Sets a read timeout on the underlying socket (None blocks
    /// forever, the default).
    ///
    /// # Errors
    ///
    /// Forwards the socket option error.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.conn.stream().set_read_timeout(timeout)
    }

    /// Submits `spec` and drains the whole stream.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with the server's structured error for
    /// refused requests, [`ClientError::Http`] for transport failures.
    pub fn generate(&mut self, spec: &RequestSpec) -> Result<WireOutcome, ClientError> {
        self.generate_streaming(spec, |_| {})
    }

    /// Submits `spec`, invoking `on_item` as each item record arrives
    /// (before it is stored in the outcome).
    ///
    /// # Errors
    ///
    /// As [`Client::generate`].
    pub fn generate_streaming(
        &mut self,
        spec: &RequestSpec,
        mut on_item: impl FnMut(&Generated),
    ) -> Result<WireOutcome, ClientError> {
        let body = proto::spec_to_json(spec).to_string();
        self.conn
            .write_request("POST", "/v1/generate", body.as_bytes())?;
        let (status, headers) = self.conn.read_response_head()?;
        if status != 200 {
            let body = self.conn.read_body(&headers)?;
            return Err(rejection(status, &body));
        }
        let mut items = Vec::new();
        let mut closing = None;
        let mut lines = LineBuf::default();
        'stream: while let Some(chunk) = self.conn.next_chunk()? {
            for line in lines.push(&chunk) {
                let record = json::parse(&line)?;
                match record.get("type").and_then(Json::as_str) {
                    Some("item") => {
                        let generated = proto::item_from_json(&record)?;
                        on_item(&generated);
                        items.push(generated);
                    }
                    Some("report") => {
                        closing = Some(proto::report_from_json(&record)?);
                        break 'stream;
                    }
                    _ => {
                        return Err(ClientError::Protocol(ProtoError::WrongType {
                            field: "type",
                            expected: "\"item\" or \"report\"",
                        }))
                    }
                }
            }
        }
        // Drain the terminating chunk if the report arrived mid-stream.
        if closing.is_some() {
            while self.conn.next_chunk()?.is_some() {}
        }
        let (requested, delivered, deadline_expired, report, error) =
            closing.ok_or(ClientError::Http(HttpError::TruncatedMessage))?;
        debug_assert_eq!(delivered, items.len());
        Ok(WireOutcome {
            items,
            report,
            requested,
            deadline_expired,
            error,
        })
    }

    /// Fetches and parses `/metrics`.
    ///
    /// # Errors
    ///
    /// As [`Client::generate`].
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let (status, body) = self.get_raw("/metrics")?;
        if status != 200 {
            return Err(rejection(status, &body));
        }
        Ok(json::parse(std::str::from_utf8(&body).map_err(|_| {
            ClientError::Protocol(ProtoError::Json(json::ParseError {
                offset: 0,
                message: "metrics body is not UTF-8",
            }))
        })?)?)
    }

    /// Issues a `GET` and returns `(status, body)` — conformance-test
    /// plumbing.
    ///
    /// # Errors
    ///
    /// Transport failures only; non-200 statuses are returned, not errors.
    pub fn get_raw(&mut self, target: &str) -> Result<(u16, Vec<u8>), ClientError> {
        self.conn.write_request("GET", target, b"")?;
        let (status, headers) = self.conn.read_response_head()?;
        let body = self.conn.read_body(&headers)?;
        Ok((status, body))
    }

    /// Issues a `POST` with an arbitrary body and returns
    /// `(status, body)`, draining chunked bodies fully — conformance-test
    /// plumbing for malformed and rejected requests.
    ///
    /// # Errors
    ///
    /// Transport failures only; non-200 statuses are returned, not errors.
    pub fn post_raw(&mut self, target: &str, body: &[u8]) -> Result<(u16, Vec<u8>), ClientError> {
        self.conn.write_request("POST", target, body)?;
        let (status, headers) = self.conn.read_response_head()?;
        let body = self.conn.read_body(&headers)?;
        Ok((status, body))
    }

    /// Sends raw bytes down the connection (deliberately broken framing).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.conn.write_raw(bytes)?;
        Ok(())
    }

    /// Reads one response after [`Client::send_raw`].
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn read_response(&mut self) -> Result<(u16, Vec<u8>), ClientError> {
        let (status, headers) = self.conn.read_response_head()?;
        let body = self.conn.read_body(&headers)?;
        Ok((status, body))
    }
}

/// Decodes a structured error body into [`ClientError::Rejected`].
fn rejection(status: u16, body: &[u8]) -> ClientError {
    let parsed = std::str::from_utf8(body)
        .ok()
        .and_then(|t| json::parse(t).ok());
    let field = |name: &str| {
        parsed
            .as_ref()
            .and_then(|v| v.get(name))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string()
    };
    ClientError::Rejected {
        status,
        code: field("code"),
        message: field("message"),
    }
}

/// Reassembles NDJSON lines from arbitrarily-split chunks.
#[derive(Debug, Default)]
struct LineBuf {
    pending: String,
}

impl LineBuf {
    /// Feeds chunk bytes; returns the complete lines they finished.
    fn push(&mut self, chunk: &[u8]) -> Vec<String> {
        self.pending.push_str(&String::from_utf8_lossy(chunk));
        let mut lines = Vec::new();
        while let Some(newline) = self.pending.find('\n') {
            let rest = self.pending.split_off(newline + 1);
            let mut line = std::mem::replace(&mut self.pending, rest);
            line.pop(); // the newline
            if !line.trim().is_empty() {
                lines.push(line);
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_buffer_reassembles_split_records() {
        let mut buf = LineBuf::default();
        assert!(buf.push(b"{\"a\":").is_empty());
        assert_eq!(buf.push(b"1}\n{\"b\"").len(), 1);
        let lines = buf.push(b":2}\n{\"c\":3}\n");
        assert_eq!(
            lines,
            vec!["{\"b\":2}".to_string(), "{\"c\":3}".to_string()]
        );
    }
}
