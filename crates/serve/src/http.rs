//! A deliberately small HTTP/1.1 implementation over any `Read + Write`
//! transport — just enough protocol for `dpserve` and its client:
//!
//! * request heads up to 8 KiB, bodies framed by `Content-Length` only
//!   (a request body in `Transfer-Encoding: chunked` is rejected);
//! * responses framed by `Content-Length` *or* `chunked` (the NDJSON
//!   stream uses one chunk per record so items reach the client as soon
//!   as they are generated);
//! * keep-alive with pipelining: bytes past the current message stay in
//!   the connection buffer and seed the next parse;
//! * timeout-tolerant reads: when the transport's read timeout fires
//!   mid-message the parser returns [`HttpError::Timeout`] with all
//!   partial data retained, so the caller can check a shutdown flag and
//!   simply call again.
//!
//! Not implemented on purpose: TLS, HTTP/2, trailers, multi-line
//! headers, `Expect: continue`, content codings. The protocol surface is
//! pinned by `tests/serve.rs` at the workspace root.

use std::io::{self, Read, Write};

/// Hard cap on a request/response head (start line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// How the byte stream failed to yield a message.
#[derive(Debug)]
pub enum HttpError {
    /// Transport error other than a read timeout.
    Io(io::Error),
    /// The transport's read timeout fired. Partial data is retained;
    /// calling the parse method again resumes where it left off.
    Timeout,
    /// Clean EOF between messages (the peer hung up while idle).
    Closed,
    /// EOF in the middle of a message.
    TruncatedMessage,
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared body exceeds the caller's limit. The body was *not*
    /// consumed; the connection must be closed after the error response.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The head was not parseable HTTP/1.x, or used an unsupported
    /// feature (e.g. a chunked request body).
    Malformed(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "transport error: {e}"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::TruncatedMessage => write!(f, "connection closed mid-message"),
            HttpError::HeadTooLarge => write!(f, "message head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            HttpError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            HttpError::Timeout
        } else {
            HttpError::Io(e)
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, query string included, undecoded.
    pub target: String,
    /// Header `(name, value)` pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// One parsed (non-streaming) response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, de-chunked when the response was chunked.
    pub body: Vec<u8>,
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// A buffered HTTP/1.1 connection over `S`. Both `dpserve` (parsing
/// requests, writing responses) and the test client (the reverse) run on
/// this one type; which methods are used decides the role.
#[derive(Debug)]
pub struct Conn<S> {
    stream: S,
    /// Bytes read but not yet consumed; `buf[pos..]` is live. Survives
    /// [`HttpError::Timeout`] so partial messages resume, and holds
    /// pipelined follow-up messages between parses.
    buf: Vec<u8>,
    pos: usize,
}

impl<S: Read + Write> Conn<S> {
    /// Wraps a transport. Set any read timeout on the transport itself
    /// (e.g. [`std::net::TcpStream::set_read_timeout`]) before wrapping.
    pub fn new(stream: S) -> Self {
        Conn {
            stream,
            buf: Vec::with_capacity(1024),
            pos: 0,
        }
    }

    /// The underlying transport (for socket-level operations like `peek`
    /// or shutdown).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Whether unconsumed bytes are buffered (a pipelined next message).
    pub fn has_buffered(&self) -> bool {
        self.pos < self.buf.len()
    }

    fn live(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Reads more bytes from the transport into the buffer.
    fn fill(&mut self) -> Result<(), HttpError> {
        // Periodically drop the consumed prefix so a long-lived
        // keep-alive connection does not grow its buffer forever.
        if self.pos > 16 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(if self.live().is_empty() {
                HttpError::Closed
            } else {
                HttpError::TruncatedMessage
            });
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Ensures at least `n` live bytes, filling as needed.
    fn want(&mut self, n: usize) -> Result<(), HttpError> {
        while self.live().len() < n {
            self.fill()?;
        }
        Ok(())
    }

    /// Finds `\r\n\r\n` in the live buffer, filling until it appears;
    /// returns the head length including the terminator.
    fn read_head(&mut self) -> Result<usize, HttpError> {
        loop {
            if let Some(i) = find(self.live(), b"\r\n\r\n") {
                if i + 4 > MAX_HEAD_BYTES {
                    return Err(HttpError::HeadTooLarge);
                }
                return Ok(i + 4);
            }
            if self.live().len() > MAX_HEAD_BYTES {
                return Err(HttpError::HeadTooLarge);
            }
            self.fill()?;
        }
    }

    /// Splits a head into its start line and header pairs.
    fn parse_head(head: &[u8]) -> Result<(String, Vec<(String, String)>), HttpError> {
        let text = std::str::from_utf8(head).map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
        let mut lines = text.split("\r\n");
        let start = lines
            .next()
            .ok_or(HttpError::Malformed("empty head"))?
            .to_string();
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(HttpError::Malformed("header line without a colon"))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::Malformed("invalid header name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        Ok((start, headers))
    }

    /// Parses the next request off the connection.
    ///
    /// # Errors
    ///
    /// [`HttpError::Timeout`] when the transport's read timeout fires
    /// (call again to resume), [`HttpError::Closed`] on idle EOF,
    /// [`HttpError::BodyTooLarge`] when the declared body exceeds
    /// `max_body` (the connection is then poisoned: respond and close).
    pub fn read_request(&mut self, max_body: usize) -> Result<Request, HttpError> {
        let head_len = self.read_head()?;
        let (start, headers) = Self::parse_head(&self.live()[..head_len - 4])?;
        let mut parts = start.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => return Err(HttpError::Malformed("bad request line")),
            };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        if header(&headers, "transfer-encoding").is_some() {
            return Err(HttpError::Malformed("chunked request bodies not supported"));
        }
        let content_length = match header(&headers, "content-length") {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))?,
            None => 0,
        };
        if content_length > max_body {
            return Err(HttpError::BodyTooLarge {
                declared: content_length,
                limit: max_body,
            });
        }
        let request = Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: Vec::new(),
        };
        self.want(head_len + content_length)?;
        self.pos += head_len;
        let body = self.live()[..content_length].to_vec();
        self.pos += content_length;
        Ok(Request { body, ..request })
    }

    /// Parses a response head; returns `(status, headers)`. The body must
    /// then be read with [`Conn::read_body`] or [`Conn::next_chunk`].
    pub fn read_response_head(&mut self) -> Result<(u16, Vec<(String, String)>), HttpError> {
        let head_len = self.read_head()?;
        let (start, headers) = Self::parse_head(&self.live()[..head_len - 4])?;
        self.pos += head_len;
        let mut parts = start.split(' ');
        let (version, code) = (parts.next(), parts.next());
        if !version.is_some_and(|v| v.starts_with("HTTP/1.")) {
            return Err(HttpError::Malformed("bad status line"));
        }
        let status = code
            .and_then(|c| c.parse::<u16>().ok())
            .ok_or(HttpError::Malformed("bad status code"))?;
        Ok((status, headers))
    }

    /// Reads a full response body described by `headers` (either framing).
    pub fn read_body(&mut self, headers: &[(String, String)]) -> Result<Vec<u8>, HttpError> {
        if header(headers, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
            let mut body = Vec::new();
            while let Some(chunk) = self.next_chunk()? {
                body.extend_from_slice(&chunk);
            }
            return Ok(body);
        }
        let n = match header(headers, "content-length") {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))?,
            None => 0,
        };
        self.want(n)?;
        let body = self.live()[..n].to_vec();
        self.pos += n;
        Ok(body)
    }

    /// Reads one chunk of a chunked response body; `Ok(None)` is the
    /// terminating zero-length chunk (stream complete).
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        let line_end = loop {
            if let Some(i) = find(self.live(), b"\r\n") {
                break i;
            }
            if self.live().len() > 32 {
                return Err(HttpError::Malformed("over-long chunk-size line"));
            }
            self.fill()?;
        };
        let size_text = std::str::from_utf8(&self.live()[..line_end])
            .map_err(|_| HttpError::Malformed("non-UTF-8 chunk size"))?;
        // Chunk extensions (";...") are allowed by the RFC; ignore them.
        let size_text = size_text.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| HttpError::Malformed("bad chunk size"))?;
        self.pos += line_end + 2;
        self.want(size + 2)?;
        let chunk = self.live()[..size].to_vec();
        if &self.live()[size..size + 2] != b"\r\n" {
            return Err(HttpError::Malformed("chunk not CRLF-terminated"));
        }
        self.pos += size + 2;
        if size == 0 {
            return Ok(None);
        }
        Ok(Some(chunk))
    }

    // -- writing ------------------------------------------------------

    /// Writes a complete `Content-Length`-framed response.
    pub fn write_response(&mut self, status: u16, body: &[u8]) -> io::Result<()> {
        self.write_response_with(status, &[], body)
    }

    /// Like [`Conn::write_response`] with extra headers (e.g.
    /// `Retry-After`). `content-type` defaults to `application/json`.
    pub fn write_response_with(
        &mut self,
        status: u16,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
            reason(status),
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Starts a chunked response; follow with [`Conn::write_chunk`] and
    /// [`Conn::finish_chunked`].
    pub fn start_chunked(&mut self, status: u16, content_type: &str) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\n\r\n",
            reason(status)
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.flush()
    }

    /// Writes one chunk and flushes, so streamed records are delivered
    /// immediately rather than at stream end.
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:X}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates a chunked response.
    pub fn finish_chunked(&mut self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }

    /// Writes a request (client side). A body is framed by
    /// `Content-Length`; `GET`-style requests pass an empty body.
    pub fn write_request(&mut self, method: &str, target: &str, body: &[u8]) -> io::Result<()> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: dpserve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Writes raw bytes straight through (for malformed-input tests).
    pub fn write_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }
}

/// Standard reason phrase for the handful of codes dpserve emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory transport: `input` is what the peer sent, `output`
    /// collects what we write.
    struct Pipe {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Pipe {
        fn new(input: &[u8]) -> Self {
            Pipe {
                input: io::Cursor::new(input.to_vec()),
                output: Vec::new(),
            }
        }
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn parses_request_with_body_and_pipelined_followup() {
        let wire = b"POST /v1/generate HTTP/1.1\r\nContent-Length: 4\r\n\r\n\
                     {\"a\"GET /metrics HTTP/1.1\r\n\r\n";
        let mut conn = Conn::new(Pipe::new(wire));
        let first = conn.read_request(1024).unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.target, "/v1/generate");
        assert_eq!(first.body, b"{\"a\"");
        assert!(conn.has_buffered());
        let second = conn.read_request(1024).unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.target, "/metrics");
        assert!(second.body.is_empty());
        assert!(matches!(conn.read_request(1024), Err(HttpError::Closed)));
    }

    #[test]
    fn rejects_oversized_declared_body_without_reading_it() {
        let wire = b"POST /v1/generate HTTP/1.1\r\ncontent-length: 999999\r\n\r\n";
        let mut conn = Conn::new(Pipe::new(wire));
        match conn.read_request(100) {
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                assert_eq!((declared, limit), (999999, 100));
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_heads() {
        for wire in [
            &b"NOT-HTTP\r\n\r\n"[..],
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: hello\r\n\r\n",
        ] {
            let mut conn = Conn::new(Pipe::new(wire));
            assert!(
                matches!(conn.read_request(1024), Err(HttpError::Malformed(_))),
                "{}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn head_size_is_capped() {
        let mut wire = b"GET /x HTTP/1.1\r\n".to_vec();
        wire.extend_from_slice(format!("x-pad: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES)).as_bytes());
        let mut conn = Conn::new(Pipe::new(&wire));
        assert!(matches!(
            conn.read_request(1024),
            Err(HttpError::HeadTooLarge)
        ));
    }

    #[test]
    fn chunked_response_round_trips() {
        // Write a chunked response through one Conn, parse it with another.
        let mut writer = Conn::new(Pipe::new(b""));
        writer.start_chunked(200, "application/x-ndjson").unwrap();
        writer.write_chunk(b"{\"n\":1}\n").unwrap();
        writer.write_chunk(b"{\"n\":2}\n").unwrap();
        writer.finish_chunked().unwrap();
        let wire = writer.stream.output.clone();

        let mut reader = Conn::new(Pipe::new(&wire));
        let (status, headers) = reader.read_response_head().unwrap();
        assert_eq!(status, 200);
        assert_eq!(reader.next_chunk().unwrap().unwrap(), b"{\"n\":1}\n");
        assert_eq!(reader.next_chunk().unwrap().unwrap(), b"{\"n\":2}\n");
        assert!(reader.next_chunk().unwrap().is_none());
        // And the all-at-once body path sees the concatenation.
        let mut reader = Conn::new(Pipe::new(&wire));
        let (_, headers2) = reader.read_response_head().unwrap();
        assert_eq!(headers, headers2);
        assert_eq!(
            reader.read_body(&headers2).unwrap(),
            b"{\"n\":1}\n{\"n\":2}\n"
        );
    }

    #[test]
    fn content_length_response_round_trips() {
        let mut writer = Conn::new(Pipe::new(b""));
        writer
            .write_response_with(429, &[("retry-after", "1")], b"{}")
            .unwrap();
        let wire = writer.stream.output.clone();
        let mut reader = Conn::new(Pipe::new(&wire));
        let (status, headers) = reader.read_response_head().unwrap();
        assert_eq!(status, 429);
        assert_eq!(header(&headers, "retry-after"), Some("1"));
        assert_eq!(reader.read_body(&headers).unwrap(), b"{}");
    }

    #[test]
    fn truncated_message_is_distinguished_from_idle_close() {
        let mut conn = Conn::new(Pipe::new(b"GET /x HT"));
        assert!(matches!(
            conn.read_request(1024),
            Err(HttpError::TruncatedMessage)
        ));
    }
}
