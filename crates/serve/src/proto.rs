//! The `dpserve` wire codec: [`RequestSpec`] and result records as JSON.
//!
//! # Protocol reference
//!
//! A generation request (`POST /v1/generate`) is one JSON object mapping
//! 1:1 onto [`RequestSpec`]. Every field except `count` is optional and
//! defaults to the [`RequestSpec::new`] value; **unknown fields are
//! rejected**, so a typo cannot silently fall back to a default:
//!
//! ```json
//! {
//!   "count": 4,
//!   "first_index": 0,
//!   "seed": 7,
//!   "priority": 0,
//!   "deadline_ms": 5000,
//!   "sample_stride": 1,
//!   "precision": "exact",
//!   "max_attempts": 4,
//!   "repair_bowties": true,
//!   "rules": {"space_min": 60, "width_min": 60, "area_min": 4000,
//!             "area_max": 1500000, "exempt_border": true},
//!   "solver": {"target_width": 2048, "target_height": 2048,
//!              "max_iterations": 500, "max_restarts": 8, "margin": 2.0},
//!   "donors": [{"topology": ["0110", "1111"], "dx": [512, 512, 512, 512],
//!               "dy": [1024, 1024]}],
//!   "conditioning": {"freeze_len": 256, "freeze_mask": "Af8A...",
//!                    "freeze_bits": "AAD/...", "avoid_motif": "isolated-cell",
//!                    "avoid_weight": 4.0}
//! }
//! ```
//!
//! The optional `conditioning` object carries the per-lane sampling
//! constraints. A frozen region travels as `freeze_len` (entry count)
//! plus `freeze_mask`/`freeze_bits`: the channel-major boolean vectors
//! packed LSB-first into bytes and base64-encoded (standard alphabet,
//! `=` padding). Both decoding and the bit packing are strict — padding
//! bits past `freeze_len` and non-canonical base64 are rejected, so one
//! wire string maps to exactly one region. Motif avoidance travels as
//! the preset name (`avoid_motif`, see `Motif::name`) and its guidance
//! `avoid_weight`. Either half may appear alone, but each half's fields
//! are all-or-nothing.
//!
//! The response is a newline-delimited JSON (NDJSON) stream: one
//! `{"type":"item", ...}` record per generated pattern in completion
//! order, then exactly one `{"type":"report", ...}` record. A pattern's
//! topology is encoded as rows of `0`/`1` characters, first row = top
//! (the same orientation as the paper figures and
//! `BitGrid::from_ascii`).
//!
//! Deadlines travel as whole milliseconds (`deadline_ms`), so a spec
//! whose deadline is not a whole number of milliseconds does not survive
//! a round-trip exactly; every other field is lossless, which the
//! proptest round-trip suite pins.

use crate::json::{self, Json};
use diffpattern::drc::DesignRules;
use diffpattern::geometry::BitGrid;
use diffpattern::legalize::{SolveStats, SolverConfig};
use diffpattern::squish::SquishPattern;
use diffpattern::{
    Conditioning, FrozenRegion, Generated, Motif, MotifGuidance, PipelineReport, Precision,
    Provenance, RequestSpec,
};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A wire-format violation: malformed JSON or a structurally invalid
/// document. Semantic spec problems (bad ruleset, zero count) are
/// [`ProtoError::InvalidSpec`] so the server can map them to a different
/// status code than syntax errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The body was not valid JSON.
    Json(json::ParseError),
    /// The document or one of its fields had the wrong JSON type.
    WrongType {
        /// Dotted path of the offending field.
        field: &'static str,
        /// What the protocol expects there.
        expected: &'static str,
    },
    /// A field name the protocol does not know (typo protection).
    UnknownField {
        /// Dotted path of the object the field appeared in (empty for
        /// the top level).
        at: &'static str,
        /// The offending name.
        field: String,
    },
    /// A required field was absent.
    MissingField {
        /// Dotted path of the absent field.
        field: &'static str,
    },
    /// A numeric field was outside its type's range.
    OutOfRange {
        /// Dotted path of the offending field.
        field: &'static str,
    },
    /// The spec parsed but is semantically invalid (zero count, a
    /// ruleset the DRC layer rejects, a donor that is not a valid squish
    /// pattern, ...). The string is the underlying error's display form.
    InvalidSpec(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "malformed JSON: {e}"),
            ProtoError::WrongType { field, expected } => {
                write!(f, "field `{field}` must be {expected}")
            }
            ProtoError::UnknownField { at, field } => {
                if at.is_empty() {
                    write!(f, "unknown field `{field}`")
                } else {
                    write!(f, "unknown field `{field}` in `{at}`")
                }
            }
            ProtoError::MissingField { field } => write!(f, "missing required field `{field}`"),
            ProtoError::OutOfRange { field } => write!(f, "field `{field}` is out of range"),
            ProtoError::InvalidSpec(message) => write!(f, "invalid spec: {message}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<json::ParseError> for ProtoError {
    fn from(e: json::ParseError) -> Self {
        ProtoError::Json(e)
    }
}

impl ProtoError {
    /// The machine-readable error code the server puts on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Json(_) => "malformed_json",
            ProtoError::UnknownField { .. } => "unknown_field",
            ProtoError::WrongType { .. } | ProtoError::MissingField { .. } => "bad_request",
            ProtoError::OutOfRange { .. } => "bad_request",
            ProtoError::InvalidSpec(_) => "invalid_spec",
        }
    }

    /// Whether the failure is semantic (HTTP 422) rather than syntactic
    /// (HTTP 400).
    pub fn is_semantic(&self) -> bool {
        matches!(self, ProtoError::InvalidSpec(_))
    }
}

// ---------------------------------------------------------------------
// RequestSpec
// ---------------------------------------------------------------------

/// Serialises a spec to its canonical wire object (every field present,
/// donors included).
pub fn spec_to_json(spec: &RequestSpec) -> Json {
    let mut fields = vec![
        ("count".to_string(), Json::from(spec.count)),
        ("first_index".to_string(), Json::from(spec.first_index)),
        ("seed".to_string(), Json::from(spec.seed)),
        ("priority".to_string(), Json::from(spec.priority)),
        ("sample_stride".to_string(), Json::from(spec.sample_stride)),
        (
            "precision".to_string(),
            Json::Str(spec.precision.name().to_string()),
        ),
        ("max_attempts".to_string(), Json::from(spec.max_attempts)),
        (
            "repair_bowties".to_string(),
            Json::Bool(spec.repair_bowties),
        ),
        ("rules".to_string(), rules_to_json(&spec.rules)),
        ("solver".to_string(), solver_to_json(&spec.solver)),
        (
            "donors".to_string(),
            Json::Arr(spec.donors.iter().map(pattern_to_json).collect()),
        ),
    ];
    if let Some(deadline) = spec.deadline {
        fields.push((
            "deadline_ms".to_string(),
            // A `Duration`'s millis fit i128 for ~10^25 years; saturate
            // rather than keep a truncating cast in the codec.
            Json::Int(i128::try_from(deadline.as_millis()).unwrap_or(i128::MAX)),
        ));
    }
    if !spec.conditioning.is_none() {
        fields.push((
            "conditioning".to_string(),
            conditioning_to_json(&spec.conditioning),
        ));
    }
    Json::Obj(fields)
}

/// Parses a wire object into a spec. Strict: unknown fields error, and
/// `count` must be present and at least 1 (the in-process API tolerates
/// `count == 0`; the protocol treats it as a caller mistake).
pub fn spec_from_json(v: &Json) -> Result<RequestSpec, ProtoError> {
    let Json::Obj(fields) = v else {
        return Err(ProtoError::WrongType {
            field: "(request)",
            expected: "an object",
        });
    };
    let mut spec = RequestSpec::new(0);
    let mut saw_count = false;
    for (key, value) in fields {
        match key.as_str() {
            "count" => {
                spec.count = usize_field(value, "count")?;
                saw_count = true;
            }
            "first_index" => spec.first_index = usize_field(value, "first_index")?,
            "seed" => spec.seed = u64_field(value, "seed")?,
            "priority" => spec.priority = i32_field(value, "priority")?,
            "deadline_ms" => {
                spec.deadline = Some(Duration::from_millis(u64_field(value, "deadline_ms")?));
            }
            "sample_stride" => spec.sample_stride = usize_field(value, "sample_stride")?,
            "precision" => {
                let name = value.as_str().ok_or(ProtoError::WrongType {
                    field: "precision",
                    expected: "\"exact\" or \"bf16\"",
                })?;
                spec.precision = Precision::parse(name).ok_or_else(|| {
                    ProtoError::InvalidSpec(format!(
                        "unknown precision `{name}` (expected exact or bf16)"
                    ))
                })?;
            }
            "max_attempts" => spec.max_attempts = usize_field(value, "max_attempts")?,
            "repair_bowties" => spec.repair_bowties = bool_field(value, "repair_bowties")?,
            "rules" => spec.rules = rules_from_json(value)?,
            "solver" => spec.solver = solver_from_json(value)?,
            "conditioning" => spec.conditioning = Arc::new(conditioning_from_json(value)?),
            "donors" => {
                let items = value.as_arr().ok_or(ProtoError::WrongType {
                    field: "donors",
                    expected: "an array",
                })?;
                let donors: Vec<SquishPattern> = items
                    .iter()
                    .map(pattern_from_json)
                    .collect::<Result<_, _>>()?;
                spec.donors = Arc::from(donors.into_boxed_slice());
            }
            other => {
                return Err(ProtoError::UnknownField {
                    at: "",
                    field: other.to_string(),
                })
            }
        }
    }
    if !saw_count {
        return Err(ProtoError::MissingField { field: "count" });
    }
    if spec.count == 0 {
        return Err(ProtoError::InvalidSpec(
            "count must be at least 1".to_string(),
        ));
    }
    Ok(spec)
}

fn rules_to_json(rules: &DesignRules) -> Json {
    Json::Obj(vec![
        ("space_min".to_string(), Json::from(rules.space_min())),
        ("width_min".to_string(), Json::from(rules.width_min())),
        ("area_min".to_string(), Json::Int(rules.area_min())),
        ("area_max".to_string(), Json::Int(rules.area_max())),
        (
            "exempt_border".to_string(),
            Json::Bool(rules.exempt_border()),
        ),
    ])
}

fn rules_from_json(v: &Json) -> Result<DesignRules, ProtoError> {
    let Json::Obj(fields) = v else {
        return Err(ProtoError::WrongType {
            field: "rules",
            expected: "an object",
        });
    };
    let mut builder = DesignRules::builder();
    let (mut area_min, mut area_max) = {
        let std = DesignRules::standard();
        (std.area_min(), std.area_max())
    };
    for (key, value) in fields {
        match key.as_str() {
            "space_min" => builder = builder.space_min(i64_field(value, "rules.space_min")?),
            "width_min" => builder = builder.width_min(i64_field(value, "rules.width_min")?),
            "area_min" => {
                area_min = value.as_int().ok_or(ProtoError::WrongType {
                    field: "rules.area_min",
                    expected: "an integer",
                })?;
            }
            "area_max" => {
                area_max = value.as_int().ok_or(ProtoError::WrongType {
                    field: "rules.area_max",
                    expected: "an integer",
                })?;
            }
            "exempt_border" => {
                builder = builder.exempt_border(bool_field(value, "rules.exempt_border")?)
            }
            other => {
                return Err(ProtoError::UnknownField {
                    at: "rules",
                    field: other.to_string(),
                })
            }
        }
    }
    builder
        .area_range(area_min, area_max)
        .build()
        .map_err(|e| ProtoError::InvalidSpec(e.to_string()))
}

fn solver_to_json(solver: &SolverConfig) -> Json {
    Json::Obj(vec![
        ("target_width".to_string(), Json::from(solver.target_width)),
        (
            "target_height".to_string(),
            Json::from(solver.target_height),
        ),
        (
            "max_iterations".to_string(),
            Json::from(solver.max_iterations),
        ),
        ("max_restarts".to_string(), Json::from(solver.max_restarts)),
        ("margin".to_string(), Json::Float(solver.margin)),
    ])
}

fn solver_from_json(v: &Json) -> Result<SolverConfig, ProtoError> {
    let Json::Obj(fields) = v else {
        return Err(ProtoError::WrongType {
            field: "solver",
            expected: "an object",
        });
    };
    let mut solver = SolverConfig::for_window(2048, 2048);
    for (key, value) in fields {
        match key.as_str() {
            "target_width" => solver.target_width = i64_field(value, "solver.target_width")?,
            "target_height" => solver.target_height = i64_field(value, "solver.target_height")?,
            "max_iterations" => {
                solver.max_iterations = usize_field(value, "solver.max_iterations")?
            }
            "max_restarts" => solver.max_restarts = usize_field(value, "solver.max_restarts")?,
            "margin" => {
                solver.margin = value.as_f64().ok_or(ProtoError::WrongType {
                    field: "solver.margin",
                    expected: "a number",
                })?;
            }
            other => {
                return Err(ProtoError::UnknownField {
                    at: "solver",
                    field: other.to_string(),
                })
            }
        }
    }
    Ok(solver)
}

// ---------------------------------------------------------------------
// Conditioning
// ---------------------------------------------------------------------

/// Serialises a non-empty conditioning (see the module docs for the
/// field semantics). [`spec_to_json`] omits the object entirely for
/// [`Conditioning::none`].
fn conditioning_to_json(cond: &Conditioning) -> Json {
    let mut fields = Vec::new();
    if let Some(region) = cond.frozen() {
        fields.push(("freeze_len".to_string(), Json::from(region.len())));
        fields.push((
            "freeze_mask".to_string(),
            Json::Str(bools_to_b64(region.mask())),
        ));
        fields.push((
            "freeze_bits".to_string(),
            Json::Str(bools_to_b64(region.bits())),
        ));
    }
    if let Some(guidance) = cond.avoid() {
        fields.push((
            "avoid_motif".to_string(),
            Json::Str(guidance.motif().name().to_string()),
        ));
        fields.push(("avoid_weight".to_string(), Json::Float(guidance.weight())));
    }
    Json::Obj(fields)
}

/// Parses a `conditioning` object. Strict like every other spec object:
/// unknown fields error, each constraint's fields are all-or-nothing,
/// and the base64 vectors must decode canonically to `freeze_len` bits.
fn conditioning_from_json(v: &Json) -> Result<Conditioning, ProtoError> {
    let Json::Obj(fields) = v else {
        return Err(ProtoError::WrongType {
            field: "conditioning",
            expected: "an object",
        });
    };
    let mut freeze_len: Option<usize> = None;
    let mut freeze_mask: Option<&str> = None;
    let mut freeze_bits: Option<&str> = None;
    let mut avoid_motif: Option<&str> = None;
    let mut avoid_weight: Option<f64> = None;
    for (key, value) in fields {
        match key.as_str() {
            "freeze_len" => {
                freeze_len = Some(usize_field(value, "conditioning.freeze_len")?);
            }
            "freeze_mask" => {
                freeze_mask = Some(value.as_str().ok_or(ProtoError::WrongType {
                    field: "conditioning.freeze_mask",
                    expected: "a base64 string",
                })?);
            }
            "freeze_bits" => {
                freeze_bits = Some(value.as_str().ok_or(ProtoError::WrongType {
                    field: "conditioning.freeze_bits",
                    expected: "a base64 string",
                })?);
            }
            "avoid_motif" => {
                avoid_motif = Some(value.as_str().ok_or(ProtoError::WrongType {
                    field: "conditioning.avoid_motif",
                    expected: "a motif preset name",
                })?);
            }
            "avoid_weight" => {
                avoid_weight = Some(value.as_f64().ok_or(ProtoError::WrongType {
                    field: "conditioning.avoid_weight",
                    expected: "a number",
                })?);
            }
            other => {
                return Err(ProtoError::UnknownField {
                    at: "conditioning",
                    field: other.to_string(),
                })
            }
        }
    }
    let mut cond = Conditioning::none();
    match (freeze_len, freeze_mask, freeze_bits) {
        (Some(len), Some(mask), Some(bits)) => {
            let mask = bools_from_b64(mask, len, "conditioning.freeze_mask")?;
            let bits = bools_from_b64(bits, len, "conditioning.freeze_bits")?;
            let region = FrozenRegion::new(mask, bits)
                .map_err(|e| ProtoError::InvalidSpec(e.to_string()))?;
            cond = cond.with_frozen(region);
        }
        (None, None, None) => {}
        (len, mask, bits) => {
            let field = if len.is_none() {
                "conditioning.freeze_len"
            } else if mask.is_none() {
                "conditioning.freeze_mask"
            } else {
                let _ = bits;
                "conditioning.freeze_bits"
            };
            return Err(ProtoError::MissingField { field });
        }
    }
    match (avoid_motif, avoid_weight) {
        (Some(name), Some(weight)) => {
            let motif = Motif::from_name(name)
                .ok_or_else(|| ProtoError::InvalidSpec(format!("unknown motif preset `{name}`")))?;
            let guidance = MotifGuidance::new(motif, weight)
                .map_err(|e| ProtoError::InvalidSpec(e.to_string()))?;
            cond = cond.with_avoid(guidance);
        }
        (None, None) => {}
        (Some(_), None) => {
            return Err(ProtoError::MissingField {
                field: "conditioning.avoid_weight",
            })
        }
        (None, Some(_)) => {
            return Err(ProtoError::MissingField {
                field: "conditioning.avoid_motif",
            })
        }
    }
    Ok(cond)
}

// ---------------------------------------------------------------------
// Base64 (standard alphabet, `=` padding, canonical-only decoding)
// ---------------------------------------------------------------------

const B64_TABLE: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Packs a boolean vector LSB-first into bytes and base64-encodes them.
fn bools_to_b64(bools: &[bool]) -> String {
    let mut bytes = vec![0u8; bools.len().div_ceil(8)];
    for (i, &b) in bools.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    b64_encode(&bytes)
}

/// Inverse of [`bools_to_b64`] for a known bit count. Rejects anything
/// but the one canonical encoding: wrong byte count, non-canonical
/// base64, or set bits past `len` in the final byte.
fn bools_from_b64(s: &str, len: usize, field: &'static str) -> Result<Vec<bool>, ProtoError> {
    let bytes = b64_decode(s)
        .ok_or_else(|| ProtoError::InvalidSpec(format!("`{field}` is not canonical base64")))?;
    if bytes.len() != len.div_ceil(8) {
        return Err(ProtoError::InvalidSpec(format!(
            "`{field}` decodes to {} bytes but freeze_len {len} needs {}",
            bytes.len(),
            len.div_ceil(8)
        )));
    }
    if !len.is_multiple_of(8) && bytes[len / 8] >> (len % 8) != 0 {
        return Err(ProtoError::InvalidSpec(format!(
            "`{field}` has set bits past freeze_len {len}"
        )));
    }
    Ok((0..len).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
}

/// The base64 alphabet character for the 6-bit group at `shift`.
fn b64_char(n: u32, shift: u32) -> char {
    // Masked to 6 bits, so the index is always in-table and the u32 →
    // usize conversion cannot fail on any supported target.
    let idx = usize::try_from((n >> shift) & 63).unwrap_or(0);
    char::from(B64_TABLE[idx])
}

/// The low 8 bits of a reassembled base64 group.
fn b64_byte(n: u32, shift: u32) -> u8 {
    // dp-lint: allow(truncating-cast-in-codec): masked to 8 bits first — truncation is the operation
    ((n >> shift) & 0xFF) as u8
}

fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let n = (u32::from(chunk[0]) << 16)
            | (u32::from(chunk.get(1).copied().unwrap_or(0)) << 8)
            | u32::from(chunk.get(2).copied().unwrap_or(0));
        out.push(b64_char(n, 18));
        out.push(b64_char(n, 12));
        out.push(if chunk.len() > 1 { b64_char(n, 6) } else { '=' });
        out.push(if chunk.len() > 2 { b64_char(n, 0) } else { '=' });
    }
    out
}

fn b64_value(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some(u32::from(c - b'A')),
        b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Strict decoder: length must be a multiple of 4, `=` only as final
/// padding, and the bits a padded chunk drops must be zero (so every
/// byte string has exactly one accepted encoding).
fn b64_decode(s: &str) -> Option<Vec<u8>> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(4) {
        return None;
    }
    let chunks = b.len() / 4;
    let mut out = Vec::with_capacity(chunks * 3);
    for (i, chunk) in b.chunks(4).enumerate() {
        let pad = if i + 1 == chunks {
            chunk.iter().rev().take_while(|&&c| c == b'=').count()
        } else {
            0
        };
        if pad > 2 {
            return None;
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | b64_value(c)?;
        }
        // `pad` is at most 2 (checked above), so the conversion is total.
        n <<= 6 * u32::try_from(pad).unwrap_or(0);
        out.push(b64_byte(n, 16));
        if pad < 2 {
            out.push(b64_byte(n, 8));
        }
        if pad < 1 {
            out.push(b64_byte(n, 0));
        }
        match pad {
            1 if n & 0xFF != 0 => return None,
            2 if n & 0xFFFF != 0 => return None,
            _ => {}
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------

/// Encodes a pattern: topology rows top-first as `0`/`1` strings, plus
/// the Δx/Δy interval vectors in nm.
pub fn pattern_to_json(pattern: &SquishPattern) -> Json {
    let grid = pattern.topology();
    let rows: Vec<Json> = (0..grid.height())
        .rev() // first wire row = top row, like `BitGrid::from_ascii`
        .map(|row| {
            Json::Str(
                (0..grid.width())
                    .map(|col| if grid.get(col, row) { '1' } else { '0' })
                    .collect(),
            )
        })
        .collect();
    Json::Obj(vec![
        ("topology".to_string(), Json::Arr(rows)),
        (
            "dx".to_string(),
            Json::Arr(pattern.dx().iter().map(|&d| Json::from(d)).collect()),
        ),
        (
            "dy".to_string(),
            Json::Arr(pattern.dy().iter().map(|&d| Json::from(d)).collect()),
        ),
    ])
}

/// Decodes a pattern, re-validating through [`SquishPattern::new`] so a
/// malformed donor (ragged rows, non-positive Δ, shape mismatch) is a
/// typed error, never a panic downstream.
pub fn pattern_from_json(v: &Json) -> Result<SquishPattern, ProtoError> {
    let Json::Obj(fields) = v else {
        return Err(ProtoError::WrongType {
            field: "pattern",
            expected: "an object",
        });
    };
    let mut rows: Option<&[Json]> = None;
    let mut dx: Option<Vec<i64>> = None;
    let mut dy: Option<Vec<i64>> = None;
    for (key, value) in fields {
        match key.as_str() {
            "topology" => {
                rows = Some(value.as_arr().ok_or(ProtoError::WrongType {
                    field: "pattern.topology",
                    expected: "an array of row strings",
                })?);
            }
            "dx" => dx = Some(coord_vec(value, "pattern.dx")?),
            "dy" => dy = Some(coord_vec(value, "pattern.dy")?),
            other => {
                return Err(ProtoError::UnknownField {
                    at: "pattern",
                    field: other.to_string(),
                })
            }
        }
    }
    let rows = rows.ok_or(ProtoError::MissingField {
        field: "pattern.topology",
    })?;
    let dx = dx.ok_or(ProtoError::MissingField {
        field: "pattern.dx",
    })?;
    let dy = dy.ok_or(ProtoError::MissingField {
        field: "pattern.dy",
    })?;
    let mut art = String::new();
    for row in rows {
        let row = row.as_str().ok_or(ProtoError::WrongType {
            field: "pattern.topology",
            expected: "an array of row strings",
        })?;
        if row.is_empty() || !row.bytes().all(|b| b == b'0' || b == b'1') {
            return Err(ProtoError::InvalidSpec(
                "topology rows must be non-empty strings of 0/1".to_string(),
            ));
        }
        art.push_str(row);
        art.push('\n');
    }
    let grid = BitGrid::from_ascii(&art).map_err(|e| ProtoError::InvalidSpec(e.to_string()))?;
    SquishPattern::new(grid, dx, dy).map_err(|e| ProtoError::InvalidSpec(e.to_string()))
}

fn coord_vec(v: &Json, field: &'static str) -> Result<Vec<i64>, ProtoError> {
    v.as_arr()
        .ok_or(ProtoError::WrongType {
            field,
            expected: "an array of integers",
        })?
        .iter()
        .map(|item| i64_field(item, field))
        .collect()
}

// ---------------------------------------------------------------------
// Stream records
// ---------------------------------------------------------------------

/// One NDJSON `item` record.
pub fn item_to_json(generated: &Generated) -> Json {
    let p = &generated.provenance;
    Json::Obj(vec![
        ("type".to_string(), Json::Str("item".to_string())),
        ("index".to_string(), Json::from(p.index)),
        ("seed".to_string(), Json::from(p.seed)),
        ("attempts".to_string(), Json::from(p.attempts)),
        ("repaired".to_string(), Json::Bool(p.repaired)),
        (
            "solve".to_string(),
            Json::Obj(vec![
                ("iterations".to_string(), Json::from(p.solve.iterations)),
                ("restarts".to_string(), Json::from(p.solve.restarts)),
            ]),
        ),
        ("pattern".to_string(), pattern_to_json(&generated.pattern)),
    ])
}

/// Decodes an `item` record back into the in-process type — the half the
/// byte-equality tests use to compare wire output with
/// `PatternService::generate`.
pub fn item_from_json(v: &Json) -> Result<Generated, ProtoError> {
    if v.get("type").and_then(Json::as_str) != Some("item") {
        return Err(ProtoError::WrongType {
            field: "type",
            expected: "\"item\"",
        });
    }
    let pattern = pattern_from_json(
        v.get("pattern")
            .ok_or(ProtoError::MissingField { field: "pattern" })?,
    )?;
    let solve = v
        .get("solve")
        .ok_or(ProtoError::MissingField { field: "solve" })?;
    let provenance = Provenance {
        index: usize_field(
            v.get("index")
                .ok_or(ProtoError::MissingField { field: "index" })?,
            "index",
        )?,
        seed: u64_field(
            v.get("seed")
                .ok_or(ProtoError::MissingField { field: "seed" })?,
            "seed",
        )?,
        attempts: usize_field(
            v.get("attempts")
                .ok_or(ProtoError::MissingField { field: "attempts" })?,
            "attempts",
        )?,
        repaired: bool_field(
            v.get("repaired")
                .ok_or(ProtoError::MissingField { field: "repaired" })?,
            "repaired",
        )?,
        solve: SolveStats {
            iterations: usize_field(
                solve.get("iterations").ok_or(ProtoError::MissingField {
                    field: "solve.iterations",
                })?,
                "solve.iterations",
            )?,
            restarts: usize_field(
                solve.get("restarts").ok_or(ProtoError::MissingField {
                    field: "solve.restarts",
                })?,
                "solve.restarts",
            )?,
        },
    };
    Ok(Generated {
        pattern,
        provenance,
    })
}

/// The final NDJSON `report` record closing every stream.
pub fn report_to_json(
    requested: usize,
    delivered: usize,
    deadline_expired: bool,
    report: &PipelineReport,
    error: Option<&str>,
) -> Json {
    let mut fields = vec![
        ("type".to_string(), Json::Str("report".to_string())),
        ("requested".to_string(), Json::from(requested)),
        ("delivered".to_string(), Json::from(delivered)),
        ("deadline_expired".to_string(), Json::Bool(deadline_expired)),
        (
            "report".to_string(),
            Json::Obj(vec![
                (
                    "topologies_sampled".to_string(),
                    Json::from(report.topologies_sampled),
                ),
                (
                    "prefilter_rejected".to_string(),
                    Json::from(report.prefilter_rejected),
                ),
                (
                    "prefilter_repaired".to_string(),
                    Json::from(report.prefilter_repaired),
                ),
                (
                    "solver_failures".to_string(),
                    Json::from(report.solver_failures),
                ),
                (
                    "legal_patterns".to_string(),
                    Json::from(report.legal_patterns),
                ),
                ("shortfall".to_string(), Json::from(report.shortfall)),
            ]),
        ),
    ];
    if let Some(error) = error {
        fields.push(("error".to_string(), Json::Str(error.to_string())));
    }
    Json::Obj(fields)
}

/// Decodes a `report` record: `(requested, delivered, deadline_expired,
/// report, error)`.
pub fn report_from_json(
    v: &Json,
) -> Result<(usize, usize, bool, PipelineReport, Option<String>), ProtoError> {
    if v.get("type").and_then(Json::as_str) != Some("report") {
        return Err(ProtoError::WrongType {
            field: "type",
            expected: "\"report\"",
        });
    }
    let inner = v
        .get("report")
        .ok_or(ProtoError::MissingField { field: "report" })?;
    let field = |name: &'static str| -> Result<usize, ProtoError> {
        usize_field(
            inner
                .get(name)
                .ok_or(ProtoError::MissingField { field: "report.*" })?,
            "report.*",
        )
    };
    let report = PipelineReport {
        topologies_sampled: field("topologies_sampled")?,
        prefilter_rejected: field("prefilter_rejected")?,
        prefilter_repaired: field("prefilter_repaired")?,
        solver_failures: field("solver_failures")?,
        legal_patterns: field("legal_patterns")?,
        shortfall: field("shortfall")?,
    };
    Ok((
        usize_field(
            v.get("requested")
                .ok_or(ProtoError::MissingField { field: "requested" })?,
            "requested",
        )?,
        usize_field(
            v.get("delivered")
                .ok_or(ProtoError::MissingField { field: "delivered" })?,
            "delivered",
        )?,
        bool_field(
            v.get("deadline_expired").ok_or(ProtoError::MissingField {
                field: "deadline_expired",
            })?,
            "deadline_expired",
        )?,
        report,
        v.get("error").and_then(Json::as_str).map(str::to_string),
    ))
}

/// A structured error body (`{"type":"error","code":...,"message":...}`).
pub fn error_to_json(code: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("type".to_string(), Json::Str("error".to_string())),
        ("code".to_string(), Json::Str(code.to_string())),
        ("message".to_string(), Json::Str(message.to_string())),
    ])
}

// ---------------------------------------------------------------------
// Typed field extraction
// ---------------------------------------------------------------------

fn int_in_range(v: &Json, field: &'static str, min: i128, max: i128) -> Result<i128, ProtoError> {
    let i = v.as_int().ok_or(ProtoError::WrongType {
        field,
        expected: "an integer",
    })?;
    if i < min || i > max {
        return Err(ProtoError::OutOfRange { field });
    }
    Ok(i)
}

fn usize_field(v: &Json, field: &'static str) -> Result<usize, ProtoError> {
    let i = int_in_range(v, field, 0, i128::try_from(usize::MAX).unwrap_or(i128::MAX))?;
    usize::try_from(i).map_err(|_| ProtoError::OutOfRange { field })
}

fn u64_field(v: &Json, field: &'static str) -> Result<u64, ProtoError> {
    let i = int_in_range(v, field, 0, i128::from(u64::MAX))?;
    u64::try_from(i).map_err(|_| ProtoError::OutOfRange { field })
}

fn i64_field(v: &Json, field: &'static str) -> Result<i64, ProtoError> {
    let i = int_in_range(v, field, i128::from(i64::MIN), i128::from(i64::MAX))?;
    i64::try_from(i).map_err(|_| ProtoError::OutOfRange { field })
}

fn i32_field(v: &Json, field: &'static str) -> Result<i32, ProtoError> {
    let i = int_in_range(v, field, i128::from(i32::MIN), i128::from(i32::MAX))?;
    i32::try_from(i).map_err(|_| ProtoError::OutOfRange { field })
}

fn bool_field(v: &Json, field: &'static str) -> Result<bool, ProtoError> {
    v.as_bool().ok_or(ProtoError::WrongType {
        field,
        expected: "a boolean",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_eq(a: &RequestSpec, b: &RequestSpec) {
        assert_eq!(a.count, b.count);
        assert_eq!(a.first_index, b.first_index);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.priority, b.priority);
        assert_eq!(a.deadline, b.deadline);
        assert_eq!(a.sample_stride, b.sample_stride);
        assert_eq!(a.precision, b.precision);
        assert_eq!(a.max_attempts, b.max_attempts);
        assert_eq!(a.repair_bowties, b.repair_bowties);
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.solver.target_width, b.solver.target_width);
        assert_eq!(a.solver.target_height, b.solver.target_height);
        assert_eq!(a.solver.max_iterations, b.solver.max_iterations);
        assert_eq!(a.solver.max_restarts, b.solver.max_restarts);
        assert_eq!(a.solver.margin.to_bits(), b.solver.margin.to_bits());
        assert_eq!(a.donors.as_ref(), b.donors.as_ref());
        assert_eq!(a.conditioning.plan_hash(), b.conditioning.plan_hash());
    }

    #[test]
    fn default_spec_round_trips() {
        let spec = RequestSpec::new(3).seed(u64::MAX);
        let wire = spec_to_json(&spec).to_string();
        let back = spec_from_json(&json::parse(&wire).unwrap()).unwrap();
        spec_eq(&spec, &back);
    }

    #[test]
    fn spec_with_deadline_and_donor_round_trips() {
        let grid = BitGrid::from_ascii("0110\n1111").unwrap();
        let donor = SquishPattern::new(grid, vec![512; 4], vec![1024; 2]).unwrap();
        let mut spec = RequestSpec::new(2)
            .deadline(Duration::from_millis(750))
            .first_index(40)
            .precision(Precision::Bf16);
        spec.donors = Arc::from([donor]);
        let wire = spec_to_json(&spec).to_string();
        let back = spec_from_json(&json::parse(&wire).unwrap()).unwrap();
        spec_eq(&spec, &back);
    }

    #[test]
    fn minimal_request_uses_defaults() {
        let spec = spec_from_json(&json::parse(r#"{"count": 5}"#).unwrap()).unwrap();
        let default = RequestSpec::new(5);
        spec_eq(&spec, &default);
    }

    #[test]
    fn unknown_and_invalid_fields_are_typed_errors() {
        let cases = [
            (r#"{"count": 1, "cuont": 2}"#, "unknown_field"),
            (
                r#"{"count": 1, "rules": {"spcae_min": 60}}"#,
                "unknown_field",
            ),
            (r#"{"seed": 3}"#, "bad_request"),
            (r#"{"count": 0}"#, "invalid_spec"),
            (r#"{"count": -1}"#, "bad_request"),
            (r#"{"count": 1, "seed": "seven"}"#, "bad_request"),
            (
                r#"{"count": 1, "rules": {"space_min": -5}}"#,
                "invalid_spec",
            ),
            (r#"{"count": 1, "precision": "fp8"}"#, "invalid_spec"),
            (r#"{"count": 1, "precision": 16}"#, "bad_request"),
            (
                r#"{"count": 1, "donors": [{"topology": ["01", "0"], "dx": [1, 1], "dy": [1, 1]}]}"#,
                "invalid_spec",
            ),
        ];
        for (body, code) in cases {
            let e = spec_from_json(&json::parse(body).unwrap()).unwrap_err();
            assert_eq!(e.code(), code, "{body} -> {e}");
        }
    }

    #[test]
    fn base64_round_trips_and_rejects_non_canonical() {
        for len in 0usize..=67 {
            let bools: Vec<bool> = (0..len).map(|i| (i * 7 + len) % 3 == 0).collect();
            let wire = bools_to_b64(&bools);
            assert_eq!(bools_from_b64(&wire, len, "t").unwrap(), bools, "len {len}");
        }
        // Non-canonical padding bits: "AB==" carries set bits the single
        // decoded byte drops.
        assert!(b64_decode("AQ==").is_some());
        assert!(b64_decode("AB==").is_none());
        assert!(b64_decode("AAA").is_none(), "length not a multiple of 4");
        assert!(b64_decode("A=AA").is_none(), "interior padding");
        assert!(b64_decode("AA!A").is_none(), "bad alphabet");
        // A set bit past freeze_len inside the final byte is rejected.
        let wire = bools_to_b64(&[true, true, true]);
        assert!(bools_from_b64(&wire, 2, "t").is_err());
    }

    #[test]
    fn conditioned_spec_round_trips() {
        let mask: Vec<bool> = (0..96).map(|i| i % 5 == 0).collect();
        let bits: Vec<bool> = (0..96).map(|i| i % 2 == 0).collect();
        let cond = Conditioning::none()
            .with_frozen(FrozenRegion::new(mask.clone(), bits.clone()).unwrap())
            .with_avoid(MotifGuidance::new(Motif::IsolatedCell, 3.25).unwrap());
        let spec = RequestSpec::new(2).conditioning(cond);
        let wire = spec_to_json(&spec).to_string();
        let back = spec_from_json(&json::parse(&wire).unwrap()).unwrap();
        spec_eq(&spec, &back);
        let region = back.conditioning.frozen().unwrap();
        assert_eq!(region.mask(), &mask[..]);
        assert_eq!(region.bits(), &bits[..]);
        let guidance = back.conditioning.avoid().unwrap();
        assert_eq!(guidance.motif(), Motif::IsolatedCell);
        assert_eq!(guidance.weight().to_bits(), 3.25f64.to_bits());
        assert_eq!(spec.conditioning.plan_hash(), back.conditioning.plan_hash());
    }

    #[test]
    fn unconditioned_spec_omits_the_conditioning_object() {
        let wire = spec_to_json(&RequestSpec::new(1)).to_string();
        assert!(!wire.contains("conditioning"));
    }

    #[test]
    fn bad_conditioning_objects_are_typed_errors() {
        let cases = [
            // Unknown field inside the object.
            (
                r#"{"count": 1, "conditioning": {"freze_len": 4}}"#,
                "unknown_field",
            ),
            // Frozen fields are all-or-nothing.
            (
                r#"{"count": 1, "conditioning": {"freeze_len": 4}}"#,
                "bad_request",
            ),
            (
                r#"{"count": 1, "conditioning": {"freeze_mask": "Dw==", "freeze_bits": "Cw=="}}"#,
                "bad_request",
            ),
            // So are the avoidance fields.
            (
                r#"{"count": 1, "conditioning": {"avoid_motif": "isolated-cell"}}"#,
                "bad_request",
            ),
            (
                r#"{"count": 1, "conditioning": {"avoid_weight": 2.0}}"#,
                "bad_request",
            ),
            // Semantic failures: bad preset, bad weight, bad base64,
            // length mismatch.
            (
                r#"{"count": 1, "conditioning": {"avoid_motif": "dense-blob", "avoid_weight": 2.0}}"#,
                "invalid_spec",
            ),
            (
                r#"{"count": 1, "conditioning": {"avoid_motif": "isolated-cell", "avoid_weight": -1.0}}"#,
                "invalid_spec",
            ),
            (
                r#"{"count": 1, "conditioning": {"freeze_len": 4, "freeze_mask": "!!", "freeze_bits": "Cw=="}}"#,
                "invalid_spec",
            ),
            (
                r#"{"count": 1, "conditioning": {"freeze_len": 400, "freeze_mask": "Dw==", "freeze_bits": "Cw=="}}"#,
                "invalid_spec",
            ),
            // Wrong JSON types.
            (r#"{"count": 1, "conditioning": "frozen"}"#, "bad_request"),
            (
                r#"{"count": 1, "conditioning": {"freeze_len": 4, "freeze_mask": 15, "freeze_bits": "Cw=="}}"#,
                "bad_request",
            ),
        ];
        for (body, code) in cases {
            let e = spec_from_json(&json::parse(body).unwrap()).unwrap_err();
            assert_eq!(e.code(), code, "{body} -> {e}");
        }
    }

    #[test]
    fn item_and_report_records_round_trip() {
        let grid = BitGrid::from_ascii("10\n01").unwrap();
        let generated = Generated {
            pattern: SquishPattern::new(grid, vec![7, 9], vec![3, 5]).unwrap(),
            provenance: Provenance {
                index: 4,
                seed: 0xDEAD_BEEF,
                attempts: 2,
                repaired: true,
                solve: SolveStats {
                    iterations: 17,
                    restarts: 1,
                },
            },
        };
        let back =
            item_from_json(&json::parse(&item_to_json(&generated).to_string()).unwrap()).unwrap();
        assert_eq!(generated, back);

        let report = PipelineReport {
            topologies_sampled: 9,
            prefilter_rejected: 1,
            prefilter_repaired: 2,
            solver_failures: 3,
            legal_patterns: 4,
            shortfall: 5,
        };
        let wire = report_to_json(6, 4, true, &report, Some("boom")).to_string();
        let (requested, delivered, expired, back, error) =
            report_from_json(&json::parse(&wire).unwrap()).unwrap();
        assert_eq!((requested, delivered, expired), (6, 4, true));
        assert_eq!(back, report);
        assert_eq!(error.as_deref(), Some("boom"));
    }
}
