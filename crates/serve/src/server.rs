//! The `dpserve` server loop: a std-only, thread-per-connection HTTP
//! front-end over a shared [`PatternService`].
//!
//! # Design
//!
//! * **Accept loop** on its own thread; every accepted socket gets a
//!   handler thread. The 1-CPU container this repo targets makes a
//!   thread pool pointless — the generation workers are the bottleneck,
//!   and handler threads spend their lives parked in `recv_timeout`.
//! * **Streaming** interleaves [`RequestHandle::recv_timeout`](diffpattern::RequestHandle::recv_timeout) polls
//!   with client-liveness checks (a non-blocking `peek`), so a client
//!   that disconnects mid-stream drops its handle within one poll
//!   interval — cancel-on-drop end-to-end over a socket.
//! * **Shutdown**: [`ServerHandle::stop`] sets a flag and pokes the
//!   listener with a wake-up connection; connection threads notice the
//!   flag at their next read timeout or poll tick.
//! * **Determinism**: the server adds nothing to the generation path —
//!   the spec decoded from the wire goes through the same
//!   [`PatternService::submit`] as an in-process caller, so the streamed
//!   items are byte-identical to a local `generate` (pinned by
//!   `tests/serve.rs`).

use crate::http::{Conn, HttpError, Request};
use crate::json;
use crate::metrics::{LibraryCounters, ServerMetrics};
use crate::proto::{self, ProtoError};
use diffpattern::drc::DesignRules;
use diffpattern::library::{LibraryConfig, LibraryError, LibraryWriter};
use diffpattern::squish::SquishPattern;
use diffpattern::{ConfigError, PatternService, RecvPoll, RequestSpec};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A durable pattern library attached to the server: every item
/// streamed to any client is also appended (through the store's
/// streaming dedup) to one shared [`LibraryWriter`], and the ingest
/// counters surface in `/metrics` under `"library"`.
///
/// Patterns land in a per-ruleset bucket (method `"diffpattern"`,
/// ruleset label synthesized from the request's design rules) in
/// arrival order across all connections. Ingest failures are absorbed —
/// a sick disk must not fail a generation stream — but the counters
/// stop advancing, which is the observable symptom.
pub struct ServeLibrary {
    writer: Mutex<LibraryWriter>,
    accepted: AtomicU64,
    deduplicated: AtomicU64,
    bytes_written: AtomicU64,
}

impl std::fmt::Debug for ServeLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("ServeLibrary")
            .field("accepted", &c.accepted)
            .field("deduplicated", &c.deduplicated)
            .field("bytes_written", &c.bytes_written)
            .finish_non_exhaustive()
    }
}

impl ServeLibrary {
    /// Opens (or creates) the library at `dir` for server-side ingest.
    ///
    /// # Errors
    ///
    /// Forwards [`LibraryWriter::open`] failures (I/O, corruption,
    /// data-loss detection).
    pub fn open(dir: impl AsRef<Path>, config: LibraryConfig) -> Result<Self, LibraryError> {
        let writer = LibraryWriter::open(dir, config)?;
        let totals = writer.totals();
        Ok(ServeLibrary {
            writer: Mutex::new(writer),
            accepted: AtomicU64::new(totals.accepted),
            deduplicated: AtomicU64::new(totals.duplicates),
            bytes_written: AtomicU64::new(totals.bytes_written),
        })
    }

    /// Lock-free snapshot of the ingest counters (for `/metrics`).
    pub fn counters(&self) -> LibraryCounters {
        LibraryCounters {
            accepted: self.accepted.load(Ordering::Relaxed),
            deduplicated: self.deduplicated.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Appends one streamed pattern in arrival order; errors are
    /// absorbed (see the type-level contract).
    fn ingest(&self, ruleset: &str, pattern: &SquishPattern) {
        let mut writer = match self.writer.lock() {
            Ok(writer) => writer,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = writer.ingest_arrival("diffpattern", ruleset, pattern, true);
        let totals = writer.totals();
        self.accepted.store(totals.accepted, Ordering::Relaxed);
        self.deduplicated
            .store(totals.duplicates, Ordering::Relaxed);
        self.bytes_written
            .store(totals.bytes_written, Ordering::Relaxed);
    }

    /// Flushes a durable checkpoint (called by [`ServerHandle::stop`];
    /// callers running long may also invoke it on a timer).
    ///
    /// # Errors
    ///
    /// Forwards the store's checkpoint failure (I/O).
    pub fn checkpoint(&self) -> Result<(), LibraryError> {
        let mut writer = match self.writer.lock() {
            Ok(writer) => writer,
            Err(poisoned) => poisoned.into_inner(),
        };
        writer.checkpoint()
    }
}

/// The bucket label for a request's design rules: compact, readable,
/// and injective over the rule fields, so distinct rulesets never share
/// a dedup domain.
fn ruleset_label(rules: &DesignRules) -> String {
    format!(
        "s{}w{}a{}-{}{}",
        rules.space_min(),
        rules.width_min(),
        rules.area_min(),
        rules.area_max(),
        if rules.exempt_border() { "x" } else { "b" }
    )
}

/// Tuning knobs for [`serve`]. `Default` suits tests and the demo
/// binary; production would mostly raise `max_body_bytes`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest accepted request body; anything larger is refused with
    /// HTTP 413 before it is read. Default 1 MiB.
    pub max_body_bytes: usize,
    /// How often a streaming handler wakes to check client liveness and
    /// the shutdown flag. Bounds cancellation latency. Default 50 ms.
    pub poll_interval: Duration,
    /// Socket read timeout while waiting for the next request on a
    /// keep-alive connection (also bounds shutdown latency for idle
    /// connections). Default 250 ms.
    pub read_timeout: Duration,
    /// When set, every streamed item is also ingested into this
    /// library, and `/metrics` grows a `"library"` section. Default
    /// `None` (the server stores nothing).
    pub library: Option<Arc<ServeLibrary>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_body_bytes: 1024 * 1024,
            poll_interval: Duration::from_millis(50),
            read_timeout: Duration::from_millis(250),
            library: None,
        }
    }
}

/// A running server: its bound address, shared metrics, and the stop
/// switch. Dropping the handle stops the server and joins the accept
/// thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    library: Option<Arc<ServeLibrary>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener is bound to (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (the live objects, not a snapshot).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Signals shutdown and joins the accept thread. Connection threads
    /// exit on their next poll tick; they hold their own service clone,
    /// so in-flight streams terminate cleanly even after this returns.
    /// An attached library gets a durable checkpoint (best effort) so a
    /// clean stop commits the dedup/diversity accelerator alongside the
    /// records.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        if let Some(library) = self.library.take() {
            let _ = library.checkpoint();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` and serves `service` until [`ServerHandle::stop`].
///
/// # Errors
///
/// Forwards the bind error (address in use, permission).
pub fn serve(service: PatternService, addr: &str, config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(ServerMetrics::default());
    let library = config.library.clone();
    let accept_stop = Arc::clone(&stop);
    let accept_metrics = Arc::clone(&metrics);
    let accept_thread = std::thread::spawn(move || {
        accept_loop(listener, service, config, accept_stop, accept_metrics);
    });
    Ok(ServerHandle {
        addr,
        stop,
        metrics,
        library,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(
    listener: TcpListener,
    service: PatternService,
    config: ServeConfig,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
) {
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(socket) = incoming else { continue };
        ServerMetrics::bump(&metrics.connections_total);
        ServerMetrics::bump(&metrics.active_connections);
        let service = service.clone();
        let config = config.clone();
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        std::thread::spawn(move || {
            let _ = handle_connection(socket, &service, &config, &stop, &metrics);
            ServerMetrics::drop_gauge(&metrics.active_connections);
        });
    }
}

/// Runs one keep-alive connection until close, fatal error, or
/// shutdown (connection accounting lives in the spawner).
fn handle_connection(
    socket: TcpStream,
    service: &PatternService,
    config: &ServeConfig,
    stop: &AtomicBool,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    socket.set_read_timeout(Some(config.read_timeout))?;
    socket.set_nodelay(true)?;
    let mut conn = Conn::new(socket);
    loop {
        let request = match conn.read_request(config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(HttpError::Closed) | Err(HttpError::TruncatedMessage) | Err(HttpError::Io(_)) => {
                return Ok(());
            }
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                // The oversized body was never read, so the connection
                // cannot be reused: respond and close.
                ServerMetrics::bump(&metrics.requests_total);
                ServerMetrics::bump(&metrics.rejected_too_large);
                let body = proto::error_to_json(
                    "body_too_large",
                    &format!("declared body of {declared} bytes exceeds limit {limit}"),
                );
                let _ = conn.write_response(413, body.to_string().as_bytes());
                return Ok(());
            }
            Err(e @ (HttpError::HeadTooLarge | HttpError::Malformed(_))) => {
                ServerMetrics::bump(&metrics.requests_total);
                ServerMetrics::bump(&metrics.rejected_malformed);
                let body = proto::error_to_json("malformed_http", &e.to_string());
                let _ = conn.write_response(400, body.to_string().as_bytes());
                return Ok(());
            }
        };
        ServerMetrics::bump(&metrics.requests_total);
        let keep_alive = route(&mut conn, request, service, config, stop, metrics)?;
        if !keep_alive || stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Dispatches one parsed request; returns whether to keep the
/// connection alive.
fn route(
    conn: &mut Conn<TcpStream>,
    request: Request,
    service: &PatternService,
    config: &ServeConfig,
    stop: &AtomicBool,
    metrics: &ServerMetrics,
) -> io::Result<bool> {
    let path = request.target.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("POST", "/v1/generate") => handle_generate(conn, &request, service, config, stop, metrics),
        ("GET", "/metrics") => {
            let counters = config.library.as_deref().map(ServeLibrary::counters);
            let body = metrics.to_json(service.stats(), counters).to_string();
            conn.write_response(200, body.as_bytes())?;
            Ok(true)
        }
        ("GET", "/healthz") => {
            conn.write_response(200, b"{\"status\":\"ok\"}")?;
            Ok(true)
        }
        (_, "/v1/generate") | (_, "/metrics") | (_, "/healthz") => {
            let body = proto::error_to_json(
                "method_not_allowed",
                &format!("{} is not supported on {path}", request.method),
            );
            conn.write_response(405, body.to_string().as_bytes())?;
            Ok(true)
        }
        _ => {
            let body = proto::error_to_json("not_found", &format!("no such endpoint: {path}"));
            conn.write_response(404, body.to_string().as_bytes())?;
            Ok(true)
        }
    }
}

/// Decodes, admits and streams one generation request.
fn handle_generate(
    conn: &mut Conn<TcpStream>,
    request: &Request,
    service: &PatternService,
    config: &ServeConfig,
    stop: &AtomicBool,
    metrics: &ServerMetrics,
) -> io::Result<bool> {
    let received = Instant::now();
    let spec = match decode_spec(&request.body) {
        Ok(spec) => spec,
        Err(e) => {
            let (status, counter) = if e.is_semantic() {
                (422, &metrics.rejected_invalid)
            } else {
                (400, &metrics.rejected_malformed)
            };
            ServerMetrics::bump(counter);
            let body = proto::error_to_json(e.code(), &e.to_string());
            conn.write_response(status, body.to_string().as_bytes())?;
            return Ok(true);
        }
    };
    let handle = match service.submit(&spec) {
        Ok(handle) => handle,
        Err(e @ ConfigError::QueueFull { .. }) => {
            ServerMetrics::bump(&metrics.rejected_queue_full);
            let body = proto::error_to_json("queue_full", &e.to_string());
            conn.write_response_with(429, &[("retry-after", "1")], body.to_string().as_bytes())?;
            return Ok(true);
        }
        Err(e) => {
            ServerMetrics::bump(&metrics.rejected_invalid);
            let body = proto::error_to_json("invalid_spec", &e.to_string());
            conn.write_response(422, body.to_string().as_bytes())?;
            return Ok(true);
        }
    };
    metrics.admit_latency.record(received.elapsed());
    stream_items(conn, handle, &spec, config, stop, metrics)
}

fn decode_spec(body: &[u8]) -> Result<RequestSpec, ProtoError> {
    let text = std::str::from_utf8(body).map_err(|_| {
        ProtoError::Json(json::ParseError {
            offset: 0,
            message: "body is not UTF-8",
        })
    })?;
    proto::spec_from_json(&json::parse(text)?)
}

/// The streaming loop: NDJSON item records as they complete, a report
/// record to close. Returns whether the connection may be reused.
fn stream_items(
    conn: &mut Conn<TcpStream>,
    mut handle: diffpattern::RequestHandle,
    spec: &RequestSpec,
    config: &ServeConfig,
    stop: &AtomicBool,
    metrics: &ServerMetrics,
) -> io::Result<bool> {
    let started = Instant::now();
    conn.start_chunked(200, "application/x-ndjson")?;
    let bucket = config
        .library
        .as_deref()
        .map(|library| (library, ruleset_label(&spec.rules)));
    let mut delivered = 0usize;
    loop {
        match handle.recv_timeout(config.poll_interval) {
            RecvPoll::Item(generated) => {
                if delivered == 0 {
                    metrics.first_item_latency.record(started.elapsed());
                }
                if let Some((library, ruleset)) = &bucket {
                    library.ingest(ruleset, &generated.pattern);
                }
                let mut line = proto::item_to_json(&generated).to_string();
                line.push('\n');
                if conn.write_chunk(line.as_bytes()).is_err() {
                    // Client gone mid-stream: dropping the handle below
                    // cancels every remaining lane.
                    ServerMetrics::bump(&metrics.disconnect_cancelled);
                    return Ok(false);
                }
                delivered += 1;
                ServerMetrics::bump(&metrics.items_streamed);
            }
            RecvPoll::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    // Server shutting down: abort the stream (the client
                    // sees a truncated chunked body, the handle drop
                    // cancels the request).
                    return Ok(false);
                }
                if client_gone(conn) {
                    ServerMetrics::bump(&metrics.disconnect_cancelled);
                    return Ok(false);
                }
            }
            RecvPoll::Finished => break,
        }
    }
    let report = handle.report();
    let deadline_expired =
        spec.deadline.is_some_and(|d| started.elapsed() >= d) && report.shortfall > 0;
    if deadline_expired {
        ServerMetrics::bump(&metrics.deadline_expired);
    }
    let error = handle.error().map(|e| e.to_string());
    let mut line = proto::report_to_json(
        spec.count,
        delivered,
        deadline_expired,
        &report,
        error.as_deref(),
    )
    .to_string();
    line.push('\n');
    if conn.write_chunk(line.as_bytes()).is_err() || conn.finish_chunked().is_err() {
        ServerMetrics::bump(&metrics.disconnect_cancelled);
        return Ok(false);
    }
    metrics.stream_latency.record(started.elapsed());
    ServerMetrics::bump(&metrics.requests_completed);
    Ok(true)
}

/// Non-destructive client-liveness probe: a non-blocking `peek` that
/// sees EOF (`Ok(0)`) when the peer closed. Buffered pipelined data or
/// `WouldBlock` both mean the peer is still there.
fn client_gone(conn: &Conn<TcpStream>) -> bool {
    let socket = conn.stream();
    if socket.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match socket.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    // Restore blocking mode with the read timeout still in force.
    if socket.set_nonblocking(false).is_err() {
        return true;
    }
    gone
}
