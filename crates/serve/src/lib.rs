//! `dp_serve`: a registry-free network front-end for the DiffPattern
//! [`PatternService`](diffpattern::PatternService) engine.
//!
//! The crate turns the in-process service API into a wire protocol
//! without adding any dependency beyond `std`: a hand-rolled HTTP/1.1
//! layer ([`http`]), a strict JSON codec ([`json`], [`proto`]), a
//! thread-per-connection server ([`server`]) with counters and latency
//! histograms ([`metrics`]), and a blocking client ([`client`]) used by
//! the test suite, the CI smoke example and the load generator.
//!
//! # Protocol in one paragraph
//!
//! `POST /v1/generate` with a JSON request body (see [`proto`] for the
//! field reference) answers with a chunked `application/x-ndjson`
//! stream: one `item` record per generated pattern in completion order,
//! then one `report` record with the aggregated
//! [`PipelineReport`](diffpattern::PipelineReport). `GET /metrics`
//! returns a JSON snapshot of server counters, latency histograms and
//! the live scheduler state; `GET /healthz` answers trivially. Invalid
//! input gets a structured `{"type":"error","code":...,"message":...}`
//! body with 400/404/405/413/422 status; admission-queue saturation
//! gets 429 plus `retry-after`.
//!
//! # The two serving contracts
//!
//! * **Determinism**: the server is a transparent transport. A spec
//!   submitted over the wire produces patterns *byte-identical* to the
//!   same spec through [`PatternService::generate`](diffpattern::PatternService::generate)
//!   (`tests/serve.rs` pins this end to end), because the engine's
//!   determinism does not depend on scheduling and the codec is
//!   lossless for every generation-relevant field.
//! * **Cancellation**: a client that disconnects mid-stream cancels its
//!   request — the handler notices within one poll interval, drops the
//!   [`RequestHandle`](diffpattern::RequestHandle), and the engine
//!   abandons the remaining lanes (observable as `lanes_in_flight`
//!   draining in `/metrics`). Deadlines ride the same mechanism
//!   server-side: an expired request closes its stream with a partial
//!   report whose `shortfall` accounts for every undelivered item.

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, WireOutcome};
pub use json::Json;
pub use metrics::{Histogram, LibraryCounters, ServerMetrics};
pub use proto::ProtoError;
pub use server::{serve, ServeConfig, ServeLibrary, ServerHandle};
