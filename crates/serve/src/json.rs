//! A minimal, dependency-free JSON value, parser and writer.
//!
//! The build environment has no cargo-registry access (see the workspace
//! root `Cargo.toml`), so the wire codec cannot use `serde_json`; this
//! module provides the subset the `dpserve` protocol needs, written the
//! same way the `rand`/`proptest`/`criterion` shims were: std only, small
//! surface, explicit limits.
//!
//! Two deliberate deviations from a general-purpose JSON library:
//!
//! * numbers are kept in two lanes — [`Json::Int`] (`i128`, which covers
//!   every integer field on the wire including `u64` seeds and `i128`
//!   area bounds losslessly) and [`Json::Float`] (`f64`) — so integer
//!   round-trips are exact, not `f64`-approximate;
//! * objects preserve insertion order in a `Vec` (no hashing), which
//!   keeps serialisation deterministic — the byte-equality tests rely on
//!   it.
//!
//! Parsing is hardened for untrusted input: a nesting-depth cap, no
//! recursion on attacker-controlled depth beyond that cap, and precise
//! error offsets for diagnostics.

use std::fmt;

/// Maximum container nesting depth the parser accepts. The protocol
/// needs 4; 32 leaves headroom without letting a hostile body recurse
/// the stack away.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.`/`e` that fits `i128`.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys rejected at parse.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i128` when it is an integer (floats do not coerce).
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `f64`; integers coerce (a JSON writer is free to emit
    /// `2` for `2.0`, the two are the same number on the wire).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // `Display` for f64 is the shortest round-tripping
                    // form, which drops the fraction for whole numbers;
                    // keep the token a float so re-parsing is type-stable.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf token; `null` keeps the
                    // document well-formed (the codec never emits these).
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Lossless integer constructors: every integer the protocol puts on
/// the wire widens into the `i128` lane without truncation, so codec
/// code never needs a bare `as` cast (`truncating-cast-in-codec`).
macro_rules! json_from_int {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Json {
            fn from(v: $ty) -> Json {
                Json::Int(i128::from(v))
            }
        }
    )*};
}

json_from_int!(u8, u16, u32, u64, i8, i16, i32, i64, i128);

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        // `usize` has no `i128: From` impl (16-byte-pointer targets are
        // theoretical); saturating keeps this total without a panic path.
        Json::Int(i128::try_from(v).unwrap_or(i128::MAX))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Serialises the value to compact JSON (no whitespace), the exact
/// byte sequence the wire tests pin. `to_string()` goes through this.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, message: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting depth limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", "expected `null`").map(|()| Json::Null),
            Some(b't') => self
                .literal("true", "expected `true`")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected `false`")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect_byte(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect_byte(b'{', "expected `{`")?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(ParseError {
                    offset: key_offset,
                    message: "duplicate object key",
                });
            }
            self.skip_ws();
            self.expect_byte(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                self.literal("\\u", "expected low surrogate escape")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 is passed through; the input is a
                    // `&str`, so the bytes are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    // The input arrived as `&str`, so this cannot fail;
                    // surfacing it as a parse error keeps the path
                    // panic-free even if that ever changes.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[start + usize::from(self.bytes[start] == b'-')] == b'0' {
            return Err(ParseError {
                offset: start,
                message: "leading zero in number",
            });
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid bytes in number"))?;
        if !is_float {
            // Integers that overflow i128 (39+ digits) degrade to f64
            // rather than failing — the codec rejects them later with a
            // range error if they reach a typed field.
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError {
                offset: start,
                message: "invalid number",
            })
    }

    fn digits(&mut self) -> Result<usize, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Int(0)),
            ("-7", Json::Int(-7)),
            ("18446744073709551615", Json::Int(u64::MAX as i128)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
            assert_eq!(parse(&value.to_string()).unwrap(), value);
        }
    }

    #[test]
    fn floats_stay_floats_across_round_trips() {
        let v = Json::Float(2.0);
        assert_eq!(v.to_string(), "2.0");
        assert_eq!(parse("2.0").unwrap(), v);
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        // Shortest-form printing must re-parse to the identical bits.
        for f in [0.1, 1.5e-300, 123456.789, f64::MIN_POSITIVE] {
            let Json::Float(back) = parse(&Json::Float(f).to_string()).unwrap() else {
                panic!("float did not stay a float");
            };
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn containers_and_escapes() {
        let text = r#"{"a":[1,2.5,"x\n\"\u00e9\ud83d\ude00"],"b":{"c":null}}"#;
        let v = parse(text).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str().unwrap(),
            "x\n\"é😀"
        );
        // Round trip through the writer.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "01",
            "1.",
            "\"\\q\"",
            "\"unterminated",
            "nulL",
            "[1] trailing",
            "\"\\ud800\"",
            "{\"a\" 1}",
        ] {
            let e = parse(text).unwrap_err();
            assert!(e.offset <= text.len(), "{text}: {e}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn huge_integers_degrade_to_floats() {
        let text = "170141183460469231731687303715884105728"; // i128::MAX + 1
        assert!(matches!(parse(text).unwrap(), Json::Float(_)));
    }
}
