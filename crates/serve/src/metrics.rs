//! Server-side observability: lock-free counters and log₂ latency
//! histograms, snapshotted as JSON by the `/metrics` endpoint.
//!
//! Everything here is atomics, so the hot paths (item streamed, request
//! admitted) never take a lock, and a `/metrics` scrape never blocks a
//! stream. Scheduler-level figures (queue depth, lanes in flight) are
//! *not* stored here — they come live from
//! [`diffpattern::PatternService::stats`] at snapshot time, so the two
//! sources cannot drift.

use crate::json::Json;
use diffpattern::ServiceStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram over microseconds: bucket `i`
/// counts observations with `us < 2^i` (and at least `2^(i-1)`); the
/// last bucket absorbs everything larger. Fixed-size, allocation-free,
/// and recordable from any thread.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An approximate quantile (`q` in `[0, 1]`) from the bucket upper
    /// bounds — coarse (within 2×) but monotone, enough for saturation
    /// curves. `None` when nothing was recorded.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << (i - 1) });
            }
        }
        Some(1u64 << (BUCKETS - 2))
    }

    /// Snapshot as `{count, sum_us, mean_us, p50_us, p99_us, buckets}`;
    /// `buckets` lists only occupied buckets as `[le_us, count]` pairs.
    pub fn to_json(&self) -> Json {
        let count = self.count();
        let sum = self.sum_us.load(Ordering::Relaxed);
        let mean = sum.checked_div(count).unwrap_or(0);
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bucket)| {
                let n = bucket.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let le = if i >= BUCKETS - 1 {
                        u64::MAX
                    } else {
                        (1u64 << i).saturating_sub(1)
                    };
                    Json::Arr(vec![Json::Int(le as i128), Json::Int(n as i128)])
                })
            })
            .collect();
        Json::Obj(vec![
            ("count".to_string(), Json::Int(count as i128)),
            ("sum_us".to_string(), Json::Int(sum as i128)),
            ("mean_us".to_string(), Json::Int(mean as i128)),
            (
                "p50_us".to_string(),
                self.quantile_us(0.5)
                    .map_or(Json::Null, |v| Json::Int(v as i128)),
            ),
            (
                "p99_us".to_string(),
                self.quantile_us(0.99)
                    .map_or(Json::Null, |v| Json::Int(v as i128)),
            ),
            ("buckets".to_string(), Json::Arr(buckets)),
        ])
    }
}

/// All counters the server maintains. One instance per server, shared
/// (`Arc`) across connection threads.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections_total: AtomicU64,
    /// Connections currently open.
    pub active_connections: AtomicU64,
    /// Requests parsed (any endpoint, before validation).
    pub requests_total: AtomicU64,
    /// Generation streams that ran to completion (report record sent).
    pub requests_completed: AtomicU64,
    /// Rejections: unparseable HTTP or JSON.
    pub rejected_malformed: AtomicU64,
    /// Rejections: well-formed but semantically invalid specs.
    pub rejected_invalid: AtomicU64,
    /// Rejections: declared body over the configured cap.
    pub rejected_too_large: AtomicU64,
    /// Rejections: admission queue at its bound (the HTTP 429 path).
    pub rejected_queue_full: AtomicU64,
    /// Streams aborted because the client vanished; each one cancelled
    /// its request's remaining lanes.
    pub disconnect_cancelled: AtomicU64,
    /// Streams whose deadline expired before the full count was
    /// delivered (the report still closed the stream).
    pub deadline_expired: AtomicU64,
    /// Item records streamed to clients.
    pub items_streamed: AtomicU64,
    /// Latency from request receipt to spec admission.
    pub admit_latency: Histogram,
    /// Latency from admission to the first streamed item.
    pub first_item_latency: Histogram,
    /// Full stream duration (admission to report record).
    pub stream_latency: Histogram,
}

/// Snapshot of the attached pattern library's ingest counters (present
/// in `/metrics` only when the server runs with a library sink).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LibraryCounters {
    /// Patterns appended to the store.
    pub accepted: u64,
    /// Byte-identical patterns dropped by streaming dedup.
    pub deduplicated: u64,
    /// Bytes appended to segment files.
    pub bytes_written: u64,
}

impl ServerMetrics {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed decrement helper (for gauges).
    pub fn drop_gauge(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// The `/metrics` document: server counters, latency histograms, the
    /// live scheduler snapshot, and (when a library sink is attached)
    /// the store's ingest counters.
    pub fn to_json(&self, scheduler: ServiceStats, library: Option<LibraryCounters>) -> Json {
        let c = |a: &AtomicU64| Json::Int(a.load(Ordering::Relaxed) as i128);
        let mut fields = vec![
            ("connections_total".to_string(), c(&self.connections_total)),
            (
                "active_connections".to_string(),
                c(&self.active_connections),
            ),
            ("requests_total".to_string(), c(&self.requests_total)),
            (
                "requests_completed".to_string(),
                c(&self.requests_completed),
            ),
            (
                "rejected_malformed".to_string(),
                c(&self.rejected_malformed),
            ),
            ("rejected_invalid".to_string(), c(&self.rejected_invalid)),
            (
                "rejected_too_large".to_string(),
                c(&self.rejected_too_large),
            ),
            (
                "rejected_queue_full".to_string(),
                c(&self.rejected_queue_full),
            ),
            (
                "disconnect_cancelled".to_string(),
                c(&self.disconnect_cancelled),
            ),
            ("deadline_expired".to_string(), c(&self.deadline_expired)),
            ("items_streamed".to_string(), c(&self.items_streamed)),
            (
                "scheduler".to_string(),
                Json::Obj(vec![
                    (
                        "queued_requests".to_string(),
                        Json::Int(scheduler.queued_requests as i128),
                    ),
                    (
                        "queued_lanes".to_string(),
                        Json::Int(scheduler.queued_lanes as i128),
                    ),
                    (
                        "lanes_in_flight".to_string(),
                        Json::Int(scheduler.lanes_in_flight as i128),
                    ),
                ]),
            ),
            (
                "latency".to_string(),
                Json::Obj(vec![
                    ("admit".to_string(), self.admit_latency.to_json()),
                    ("first_item".to_string(), self.first_item_latency.to_json()),
                    ("stream".to_string(), self.stream_latency.to_json()),
                ]),
            ),
        ];
        if let Some(lib) = library {
            fields.push((
                "library".to_string(),
                Json::Obj(vec![
                    ("accepted".to_string(), Json::Int(lib.accepted as i128)),
                    (
                        "deduplicated".to_string(),
                        Json::Int(lib.deduplicated as i128),
                    ),
                    (
                        "bytes_written".to_string(),
                        Json::Int(lib.bytes_written as i128),
                    ),
                ]),
            ));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        let p50 = h.quantile_us(0.5).unwrap();
        assert!((2..=4).contains(&p50), "{p50}");
        let p99 = h.quantile_us(0.99).unwrap();
        assert!(p99 >= 65_536, "{p99}");
        // Snapshot parses back and carries the count through.
        let snap = crate::json::parse(&h.to_json().to_string()).unwrap();
        assert_eq!(snap.get("count").and_then(Json::as_int), Some(6));
    }

    #[test]
    fn metrics_document_round_trips_and_reflects_counters() {
        let m = ServerMetrics::default();
        ServerMetrics::bump(&m.items_streamed);
        ServerMetrics::bump(&m.items_streamed);
        m.stream_latency.record(Duration::from_millis(5));
        let doc = m.to_json(ServiceStats::default(), None).to_string();
        let parsed = crate::json::parse(&doc).unwrap();
        assert_eq!(parsed.get("items_streamed").and_then(Json::as_int), Some(2));
        assert!(parsed.get("library").is_none());
        let doc = m
            .to_json(
                ServiceStats::default(),
                Some(LibraryCounters {
                    accepted: 7,
                    deduplicated: 3,
                    bytes_written: 4096,
                }),
            )
            .to_string();
        let parsed = crate::json::parse(&doc).unwrap();
        let lib = parsed.get("library").expect("library section");
        assert_eq!(lib.get("accepted").and_then(Json::as_int), Some(7));
        assert_eq!(lib.get("deduplicated").and_then(Json::as_int), Some(3));
        assert_eq!(lib.get("bytes_written").and_then(Json::as_int), Some(4096));
        assert_eq!(
            parsed
                .get("scheduler")
                .and_then(|s| s.get("lanes_in_flight"))
                .and_then(Json::as_int),
            Some(0)
        );
        assert_eq!(
            parsed
                .get("latency")
                .and_then(|l| l.get("stream"))
                .and_then(|s| s.get("count"))
                .and_then(Json::as_int),
            Some(1)
        );
    }
}
