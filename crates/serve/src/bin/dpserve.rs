//! `dpserve` — the DiffPattern network front-end.
//!
//! ```text
//! dpserve --model model.dpm [--addr 127.0.0.1:7878] [--threads N]
//!         [--micro-batch N] [--max-queued N] [--default-deadline-ms N]
//!         [--max-body-kib N]
//! dpserve --demo [--iters N] [--seed N] [...same serving flags]
//! ```
//!
//! Loads a frozen model (or, with `--demo`, trains a tiny one in
//! process), builds one long-lived [`PatternService`], and serves the
//! JSON protocol documented in `dp_serve::proto`:
//!
//! * `POST /v1/generate` — NDJSON stream of generated patterns plus a
//!   closing report record;
//! * `GET /metrics` — counters, latency histograms, scheduler state;
//! * `GET /healthz` — liveness.
//!
//! The bound address is printed to stdout as `listening on ADDR` once
//! the listener is up (with `--addr` port 0 the line is how scripts
//! learn the real port). The process serves until killed.

use diffpattern::library::LibraryConfig;
use diffpattern::{PatternService, Pipeline, PipelineConfig, TrainedModel};
use dp_serve::{serve, ServeConfig, ServeLibrary};
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage:
  dpserve --model FILE [serving flags]
  dpserve --demo [--iters N] [--seed N] [serving flags]

serving flags:
  --addr HOST:PORT         bind address (default 127.0.0.1:7878; port 0 picks a free port)
  --threads N              generation worker threads (default: available parallelism)
  --micro-batch N          denoising lanes per U-Net call (default 8)
  --max-queued N           admission bound; further requests get HTTP 429 (default 0 = unbounded)
  --default-deadline-ms N  deadline for requests that set none (default: none)
  --max-body-kib N         largest accepted request body (default 1024)
  --library DIR            also append every streamed pattern to the durable
                           library at DIR (created if missing, resumed if
                           present); ingest counters appear in /metrics

endpoints: POST /v1/generate (NDJSON stream), GET /metrics, GET /healthz";

// `BTreeMap` so any diagnostic listing of options is deterministic.
type Options = BTreeMap<String, Vec<String>>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(options) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--key value` pairs, except `--demo` which is a bare flag.
fn parse(args: &[String]) -> Option<Options> {
    let mut options = Options::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?;
        if key == "demo" {
            options.entry(key.to_string()).or_default();
            continue;
        }
        let value = it.next()?;
        options
            .entry(key.to_string())
            .or_default()
            .push(value.clone());
    }
    Some(options)
}

fn opt_usize(options: &Options, key: &str, default: usize) -> usize {
    options
        .get(key)
        .and_then(|v| v.last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_str<'o>(options: &'o Options, key: &str) -> Option<&'o str> {
    options.get(key).and_then(|v| v.last()).map(String::as_str)
}

fn load_model(options: &Options) -> Result<Arc<TrainedModel>, Box<dyn std::error::Error>> {
    if let Some(path) = opt_str(options, "model") {
        return Ok(Arc::new(TrainedModel::load(&std::fs::read(path)?)?));
    }
    if !options.contains_key("demo") {
        return Err("pass --model FILE or --demo (see --help)".into());
    }
    let iters = opt_usize(options, "iters", 300);
    let seed = opt_usize(options, "seed", 42) as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    eprintln!("demo mode: training a tiny model for {iters} iterations...");
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    pipeline.train(iters, &mut rng)?;
    Ok(Arc::new(pipeline.into_trained_model()?))
}

fn run(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let model = load_model(options)?;
    let mut builder = PatternService::builder(model)
        .threads(opt_usize(options, "threads", 0))
        .micro_batch(opt_usize(options, "micro-batch", 8))
        .max_queued_requests(opt_usize(options, "max-queued", 0));
    if let Some(ms) = options
        .get("default-deadline-ms")
        .and_then(|v| v.last())
        .and_then(|v| v.parse::<u64>().ok())
    {
        builder = builder.default_deadline(Duration::from_millis(ms));
    }
    let service = builder.build()?;
    let library = match opt_str(options, "library") {
        Some(dir) => {
            let lib = ServeLibrary::open(dir, LibraryConfig::default())?;
            eprintln!("library sink: {dir} ({:?})", lib.counters());
            Some(Arc::new(lib))
        }
        None => None,
    };
    let config = ServeConfig {
        max_body_bytes: opt_usize(options, "max-body-kib", 1024) * 1024,
        library,
        ..ServeConfig::default()
    };
    let addr = opt_str(options, "addr").unwrap_or("127.0.0.1:7878");
    let handle = serve(service, addr, config)?;
    // Scripts (the CI smoke step, the load generator) wait for this
    // exact line to learn the bound port; keep it stable and flushed.
    println!("listening on {}", handle.addr());
    std::io::stdout().flush()?;
    eprintln!("endpoints: POST /v1/generate, GET /metrics, GET /healthz (ctrl-c to stop)");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
