//! Load generator for `dpserve`: sweeps client concurrency against one
//! server and prints the saturation curve — requests/second, items/
//! second, and per-request latency medians at each level.
//!
//! ```text
//! cargo run --release --example serve_load
//! DP_LOAD_LEVELS=1,2,4,8 DP_LOAD_REQUESTS=8 cargo run --release --example serve_load
//! ```
//!
//! The server runs in-process (same engine the binary would host), so
//! the numbers isolate protocol + scheduling behaviour from container
//! networking. What to look for: requests/second should *rise* with
//! concurrency until the generation pool saturates (the engine fills
//! its micro-batches across connections), then flatten — while
//! per-request latency grows roughly linearly past that knee. A 429 row
//! appears only if `DP_LOAD_MAX_QUEUED` bounds the admission queue.

use diffpattern::{PatternService, Pipeline, PipelineConfig, RequestSpec};
use dp_serve::{serve, Client, ClientError, ServeConfig};
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iters = env_usize("DP_LOAD_TRAIN_ITERS", 60);
    let per_client = env_usize("DP_LOAD_REQUESTS", 4);
    let count = env_usize("DP_LOAD_COUNT", 2);
    let max_queued = env_usize("DP_LOAD_MAX_QUEUED", 0);
    let levels: Vec<usize> = std::env::var("DP_LOAD_LEVELS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .collect();

    eprintln!("training a tiny model ({iters} iterations)...");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    pipeline.train(iters, &mut rng)?;
    let base = pipeline.request_spec(count);
    let model = Arc::new(pipeline.into_trained_model()?);
    let service = PatternService::builder(model)
        .max_queued_requests(max_queued)
        .build()?;
    let server = serve(service, "127.0.0.1:0", ServeConfig::default())?;
    let addr = server.addr();
    eprintln!("server on {addr}; sweeping concurrency levels {levels:?}\n");

    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "clients", "req/s", "items/s", "p50_ms", "max_ms", "429s"
    );
    for &clients in &levels {
        let started = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|who| {
                let base = base.clone();
                std::thread::spawn(move || -> Result<_, ClientError> {
                    let mut client = Client::connect(addr)?;
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut items = 0usize;
                    let mut rejected = 0usize;
                    for r in 0..per_client {
                        let spec = RequestSpec {
                            seed: (who * 1000 + r) as u64,
                            ..base.clone()
                        };
                        let t = Instant::now();
                        match client.generate(&spec) {
                            Ok(outcome) => {
                                items += outcome.items.len();
                                latencies.push(t.elapsed());
                            }
                            Err(ClientError::Rejected { status: 429, .. }) => {
                                rejected += 1;
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    Ok((latencies, items, rejected))
                })
            })
            .collect();
        let mut latencies = Vec::new();
        let mut items = 0usize;
        let mut rejected = 0usize;
        for worker in workers {
            let (l, i, r) = worker.join().expect("load worker panicked")?;
            latencies.extend(l);
            items += i;
            rejected += r;
        }
        let wall = started.elapsed().as_secs_f64();
        latencies.sort();
        let p50 = latencies
            .get(latencies.len() / 2)
            .copied()
            .unwrap_or_default();
        let max = latencies.last().copied().unwrap_or_default();
        println!(
            "{clients:>8} {:>10.2} {:>10.2} {:>12.1} {:>12.1} {rejected:>8}",
            latencies.len() as f64 / wall,
            items as f64 / wall,
            p50.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
        );
    }

    // Close with the server's own view of the run.
    let metrics = Client::connect(addr)?.metrics()?;
    let counter = |k: &str| metrics.get(k).and_then(dp_serve::Json::as_int).unwrap_or(0);
    eprintln!(
        "\nserver totals: {} requests, {} items streamed, {} completed, {} queue-full",
        counter("requests_total"),
        counter("items_streamed"),
        counter("requests_completed"),
        counter("rejected_queue_full"),
    );
    Ok(())
}
