//! Domain-specific example: building a labelled pattern library for
//! lithography hotspot-detection research — the downstream task the
//! paper's introduction motivates (DFM teams need large, diverse, *legal*
//! pattern libraries to train hotspot detectors).
//!
//! The example generates a DiffPattern library into the durable
//! content-addressed store (`dp_library`) — deduplicated at ingest,
//! resumable across runs — then reads it **back from disk**, labels each
//! stored pattern with a simple lithography-stress proxy (minimum
//! interior space and width over the tile — patterns sitting close to
//! the rule limits print worst), and writes PGM images plus a CSV
//! manifest, the typical input format of an ML hotspot-detection
//! pipeline.
//!
//! ```text
//! cargo run --release --example hotspot_library
//! ```
//!
//! Environment knobs: `DP_TRAIN_ITERS` (default 200), `DP_GENERATE`
//! (default 12), `DP_OUT_DIR` (default `hotspot_library/`). The store
//! lives at `DP_OUT_DIR/library/`; rerunning with a larger
//! `DP_GENERATE` resumes it instead of starting over.

use diffpattern::geometry::runs;
use diffpattern::library::{LibraryConfig, LibraryWriter};
use diffpattern::squish::SquishPattern;
use diffpattern::{Pipeline, PipelineConfig};
use diffpattern_suite::{env_knob, example_rng};
use std::io::Write;
use std::path::PathBuf;

const METHOD: &str = "diffpattern";
const RULESET: &str = "tiny";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let train_iters = env_knob("DP_TRAIN_ITERS", 200);
    let generate = env_knob("DP_GENERATE", 12);
    let out_dir =
        PathBuf::from(std::env::var("DP_OUT_DIR").unwrap_or_else(|_| "hotspot_library".into()));
    std::fs::create_dir_all(&out_dir)?;

    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    println!("training for {train_iters} iterations...");
    let _ = pipeline.train(train_iters, &mut rng)?;
    let rules = pipeline.config().rules;

    // Phase 1: build (or resume) the durable library. The bucket cursor
    // tells us where the last run stopped; generation restarts from that
    // item index, so the store converges on the same content no matter
    // how many runs it took to get there.
    let mut writer = LibraryWriter::open(out_dir.join("library"), LibraryConfig::default())?;
    let cursor = writer.open_bucket(METHOD, RULESET, 0)? as usize;
    if cursor < generate {
        println!("generating items {cursor}..{generate} into the store...");
        let model = pipeline.trained_model()?;
        let session = pipeline
            .session_builder(&model)
            .seed(env_knob("DP_SEED", 42) as u64)
            .build()?;
        let batch = session.generate(generate)?;
        for generated in batch.items.iter().skip(cursor) {
            writer.ingest_arrival(METHOD, RULESET, &generated.pattern, true)?;
        }
    } else {
        println!("store already holds items 0..{cursor}; nothing to generate");
    }
    let store = writer.finish()?;

    // Phase 2: read the library back from disk and derive the artifacts
    // from the *stored* records (post-dedup, checksum-verified).
    let stats = store.stats(METHOD, RULESET).expect("bucket exists");
    println!(
        "store: {} patterns ({} duplicates absorbed), H = {:.4} bits",
        stats.accepted, stats.duplicates, stats.diversity
    );
    let manifest_path = out_dir.join("manifest.csv");
    let mut manifest = std::fs::File::create(&manifest_path)?;
    writeln!(manifest, "file,cx,cy,min_space,min_width,stress,label")?;

    let mut scratch = Vec::new();
    let mut hotspots = 0usize;
    let mut written = 0usize;
    for record_ref in store.records(METHOD, RULESET).expect("bucket exists") {
        let record = store.read(record_ref, &mut scratch)?;
        let pattern = &record.pattern;
        let (min_space, min_width) = stress_metrics(pattern);
        // Proxy label: a pattern whose tightest feature sits within 25 % of
        // the rule limit is "hotspot-suspect".
        let space_slack = min_space as f64 / rules.space_min() as f64;
        let width_slack = min_width as f64 / rules.width_min() as f64;
        let stress = 1.0 / space_slack.min(width_slack);
        let label = if stress > 0.8 { "hotspot" } else { "clean" };
        if label == "hotspot" {
            hotspots += 1;
        }

        let file = format!("pattern_{:04}.pgm", record.source_index);
        let layout = pattern.decode()?;
        diffpattern::render::layout_to_pgm(&layout, 256, &out_dir.join(&file))?;
        let (cx, cy) = pattern.complexity();
        writeln!(
            manifest,
            "{file},{cx},{cy},{min_space},{min_width},{stress:.3},{label}"
        )?;
        written += 1;
    }
    println!(
        "wrote {} patterns ({} hotspot-suspect) to {} with manifest {}",
        written,
        hotspots,
        out_dir.display(),
        manifest_path.display()
    );
    Ok(())
}

/// Minimum interior space and width (nm) over both axes of a pattern —
/// the lithography-stress proxy.
fn stress_metrics(pattern: &SquishPattern) -> (i64, i64) {
    let topo = pattern.topology();
    let xs = pattern.x_scan_lines();
    let ys = pattern.y_scan_lines();
    let mut min_space = i64::MAX;
    let mut min_width = i64::MAX;
    for row in 0..topo.height() {
        let cells: Vec<bool> = topo.row(row).collect();
        for run in runs::filled_runs(cells.iter().copied()) {
            if !run.touches_border(topo.width()) {
                min_width = min_width.min(xs[run.end] - xs[run.start]);
            }
        }
        for run in runs::interior_space_runs(cells.iter().copied(), topo.width()) {
            min_space = min_space.min(xs[run.end] - xs[run.start]);
        }
    }
    for col in 0..topo.width() {
        let cells: Vec<bool> = topo.column(col).collect();
        for run in runs::filled_runs(cells.iter().copied()) {
            if !run.touches_border(topo.height()) {
                min_width = min_width.min(ys[run.end] - ys[run.start]);
            }
        }
        for run in runs::interior_space_runs(cells.iter().copied(), topo.height()) {
            min_space = min_space.min(ys[run.end] - ys[run.start]);
        }
    }
    (
        if min_space == i64::MAX { 0 } else { min_space },
        if min_width == i64::MAX { 0 } else { min_width },
    )
}
