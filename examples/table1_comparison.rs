//! Regenerates paper Table I: pattern diversity and legality for every
//! method (Real / CAE / VCAE / CAE+LegalGAN / VCAE+LegalGAN /
//! LayouTransformer / DiffPattern-S / DiffPattern-L), every generator
//! driven through the shared [`diffpattern::PatternSource`] interface.
//!
//! ```text
//! cargo run --release --example table1_comparison
//! ```
//!
//! Environment knobs: `DP_TRAIN_ITERS` (diffusion, default 300),
//! `DP_GENERATE` (patterns per method, default 100; the paper uses
//! 100 000), `DP_AE_ITERS` (baseline training, default 300),
//! `DP_THREADS` (default 0 = all cores), `DP_SEED`.

use diffpattern::table1::{self, Table1Config};
use diffpattern::{metrics, PatternService, Pipeline, PipelineConfig};
use diffpattern_suite::{env_knob, example_rng};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let train_iters = env_knob("DP_TRAIN_ITERS", 300);
    let generate = env_knob("DP_GENERATE", 100);
    let ae_iterations = env_knob("DP_AE_ITERS", 300);

    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    println!(
        "dataset: {} tiles, real diversity H = {:.4}",
        pipeline.dataset().report.accepted,
        pipeline.dataset().library().diversity()
    );
    println!("training the diffusion model for {train_iters} iterations...");
    let report = pipeline.train(train_iters, &mut rng)?;
    println!(
        "diffusion loss: {:.4} -> {:.4}",
        report.head_mean(20),
        report.tail_mean(20)
    );

    let model = Arc::new(pipeline.trained_model()?);
    let service = PatternService::builder(model)
        .threads(env_knob("DP_THREADS", 0))
        .build()?;
    let spec = pipeline
        .request_spec(0)
        .seed(env_knob("DP_SEED", 42) as u64);

    let config = Table1Config {
        generate,
        ae_iterations,
        ae: diffpattern::baselines::AeConfig {
            side: pipeline.config().dataset.matrix_side,
            features: 8,
            latent: 32,
        },
        variants_per_topology: env_knob("DP_VARIANTS", 10),
    };
    println!("running all Table I rows ({generate} patterns per method)...\n");
    let rows = table1::run(&service, &spec, pipeline.dataset(), config, &mut rng)?;

    println!("{}", metrics::table_header());
    for row in &rows {
        println!("{row}");
    }
    Ok(())
}
