//! Batch-generation scaling: the headline of the train/infer split.
//!
//! PR 1's baseline put one topology sample at **19.6 ms** — topology
//! sampling utterly dominates generation (a legalization solve is ~27 µs).
//! With an immutable [`diffpattern::TrainedModel`] shared across
//! `std::thread::scope` workers, batch sampling scales with cores while
//! staying bit-identical per seed. This example measures exactly that:
//! the same 16-topology batch at 1, 2, 4, ... threads, verifying the
//! outputs match before reporting the speedups.
//!
//! ```text
//! cargo run --release --example session_scaling
//! ```
//!
//! The second sweep varies the sampling **micro-batch** (lock-step
//! denoising lanes per U-Net call) at a fixed thread count, again
//! verifying bit-identical output at every setting — the determinism
//! argument is per-lane RNG streams, so neither knob can change what is
//! generated.
//!
//! Environment knobs: `DP_TRAIN_ITERS` (default 100), `DP_GENERATE`
//! (batch size, default 16), `DP_MAX_THREADS` (default = available
//! parallelism), `DP_SEED`.

use diffpattern::{Pipeline, PipelineConfig};
use diffpattern_suite::{env_knob, example_rng};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let train_iters = env_knob("DP_TRAIN_ITERS", 100);
    let batch = env_knob("DP_GENERATE", 16);
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let max_threads = env_knob("DP_MAX_THREADS", hw_threads);
    let seed = env_knob("DP_SEED", 42) as u64;

    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    println!("training for {train_iters} iterations...");
    let _ = pipeline.train(train_iters, &mut rng)?;
    let model = pipeline.trained_model()?;

    println!(
        "\nbatch of {batch} topologies, hardware parallelism {hw_threads}:\n\n{:<8} {:>12} {:>12} {:>9}",
        "threads", "total", "per-sample", "speedup"
    );

    let mut serial_total = 0.0f64;
    let mut reference: Option<Vec<_>> = None;
    let mut runs = 0usize;
    let mut threads = 1;
    while threads <= max_threads {
        let session = pipeline
            .session_builder(&model)
            .threads(threads)
            .seed(seed)
            .build()?;
        let start = Instant::now();
        let (topologies, report) = session.sample_topologies(batch);
        let total = start.elapsed().as_secs_f64();
        if threads == 1 {
            serial_total = total;
        }
        match &reference {
            None => reference = Some(topologies),
            Some(reference) => assert_eq!(
                reference, &topologies,
                "determinism violated: thread count changed the batch"
            ),
        }
        println!(
            "{threads:<8} {:>10.3} s {:>10.1} ms {:>8.2}x{}",
            total,
            1e3 * total / batch as f64,
            serial_total / total,
            if report.shortfall > 0 {
                format!("  ({} short)", report.shortfall)
            } else {
                String::new()
            }
        );
        runs += 1;
        threads *= 2;
    }
    if runs >= 2 {
        println!("\nper-seed output verified bit-identical across {runs} thread counts");
    } else {
        println!(
            "\nonly one thread count ran (DP_MAX_THREADS={max_threads}); \
             determinism cross-check needs at least two"
        );
    }

    println!(
        "\nmicro-batch sweep (1 thread, same {batch}-topology batch):\n\n{:<12} {:>12} {:>12} {:>9}",
        "micro-batch", "total", "per-sample", "speedup"
    );
    let mut mb_serial_total = 0.0f64;
    for micro_batch in [1usize, 2, 4, 8, 16] {
        let session = pipeline
            .session_builder(&model)
            .threads(1)
            .micro_batch(micro_batch)
            .seed(seed)
            .build()?;
        let start = Instant::now();
        let (topologies, _) = session.sample_topologies(batch);
        let total = start.elapsed().as_secs_f64();
        if micro_batch == 1 {
            mb_serial_total = total;
        }
        assert_eq!(
            reference.as_ref().expect("thread sweep ran"),
            &topologies,
            "determinism violated: micro-batch size changed the batch"
        );
        println!(
            "{micro_batch:<12} {:>10.3} s {:>10.1} ms {:>8.2}x",
            total,
            1e3 * total / batch as f64,
            mb_serial_total / total,
        );
    }
    println!("\nper-seed output verified bit-identical across all micro-batch sizes");
    Ok(())
}
