//! Reproduces paper Fig. 6: flattened samples along the reverse denoising
//! chain T_K -> T_k -> T-hat_0.
//!
//! ```text
//! cargo run --release --example fig6_denoising_chain
//! ```
//!
//! Prints ASCII snapshots of one reverse trajectory: pure uniform noise at
//! k = K progressively denoising into a binary layout topology, with no
//! thresholding anywhere — the visual argument of the paper's Fig. 6.

use diffpattern::render::grid_to_ascii;
use diffpattern::{Pipeline, PipelineConfig};
use diffpattern_suite::{env_knob, example_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let train_iters = env_knob("DP_TRAIN_ITERS", 150);

    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    println!("training for {train_iters} iterations...");
    let _ = pipeline.train(train_iters, &mut rng)?;

    // Freeze the trained state; tracing runs on the immutable model.
    let model = pipeline.into_trained_model()?;
    let steps = model.schedule().steps();
    let sampler = model.sampler();

    // Snapshot at 3K/4, K/2 and K/4 like the paper's strip (K and 0 are
    // always included by the tracer).
    let snaps = vec![3 * steps / 4, steps / 2, steps / 4];
    let trace =
        sampler.sample_with_trace_infer(&model, model.channels(), model.side(), &snaps, &mut rng);

    for (k, tensor) in &trace.snapshots {
        let grid = tensor.unfold();
        let filled = grid.count_ones();
        println!(
            "--- step k = {k} (filled {} / {}) ---",
            filled,
            grid.width() * grid.height()
        );
        println!("{}", grid_to_ascii(&grid));
    }
    println!(
        "final sample bow-tie free: {}",
        diffpattern::geometry::bowtie::is_bowtie_free(&trace.sample.unfold())
    );
    Ok(())
}
