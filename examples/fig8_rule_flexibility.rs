//! Reproduces paper Fig. 8: legal layout patterns generated from the SAME
//! topology under DIFFERENT design rules, without retraining anything —
//! the flexibility argument for decoupling topology generation from
//! legalization.
//!
//! ```text
//! cargo run --release --example fig8_rule_flexibility
//! ```

use diffpattern::drc::{check_pattern, DesignRules};
use diffpattern::geometry::BitGrid;
use diffpattern::legalize::{Init, Solver, SolverConfig};
use diffpattern::render::pattern_to_ascii;
use diffpattern_suite::example_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();

    let topology = BitGrid::from_ascii(
        "........
         .##..#..
         .##..#..
         .....#..
         .###.##.
         .###....
         ........
         ........",
    )?;
    println!("shared topology:");
    println!("{}", diffpattern::render::grid_to_ascii(&topology));

    let rule_sets = [
        ("(a) normal rules", DesignRules::standard()),
        ("(b) larger space_min", DesignRules::larger_space()),
        ("(c) smaller area_max", DesignRules::smaller_area()),
    ];

    for (label, rules) in rule_sets {
        let solver = Solver::new(rules, SolverConfig::for_window(2048, 2048));
        match solver.legal_pattern(&topology, Init::Random, &mut rng) {
            Ok(pattern) => {
                let report = check_pattern(&pattern, &rules);
                println!("--- {label}: {rules} ---");
                println!("DRC clean = {}", report.is_clean());
                println!("{}", pattern_to_ascii(&pattern, 48, 20));
            }
            Err(e) => println!("--- {label}: unsolvable ({e}) ---"),
        }
    }
    Ok(())
}
