//! Regenerates paper Table II: average wall-clock time per sample for
//! topology sampling and for the nonlinear-system solving phase with
//! random (Solving-R) versus existing-vector (Solving-E) initialisation.
//!
//! ```text
//! cargo run --release --example table2_efficiency
//! ```
//!
//! Environment knobs: `DP_TRAIN_ITERS` (default 100), `DP_SAMPLES`
//! (default 16), `DP_THREADS` (default 1, so the per-sample cost is the
//! serial anchor; raise it to measure batch throughput), `DP_SEED`.

use diffpattern::table2;
use diffpattern::{PatternService, Pipeline, PipelineConfig};
use diffpattern_suite::{env_knob, example_rng};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let train_iters = env_knob("DP_TRAIN_ITERS", 100);
    let samples = env_knob("DP_SAMPLES", 16);

    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    println!("training for {train_iters} iterations...");
    let _ = pipeline.train(train_iters, &mut rng)?;
    let model = Arc::new(pipeline.trained_model()?);
    let service = PatternService::builder(model)
        .threads(env_knob("DP_THREADS", 1))
        .build()?;
    let spec = pipeline
        .request_spec(0)
        .seed(env_knob("DP_SEED", 42) as u64);

    println!(
        "measuring over {samples} samples on {} threads...\n",
        service.threads()
    );
    let rows = table2::run(
        &service,
        &spec,
        &pipeline.dataset().extended,
        samples,
        &mut rng,
    )?;
    println!("{:<12} {:>14} {:>9}", "Phase", "Cost Time", "Accel.");
    for row in &rows {
        println!("{row}");
    }
    if let (Some(r), Some(e)) = (rows.get(1), rows.get(2)) {
        println!(
            "\nSolving-E speedup over Solving-R: {:.2}x (paper reports 2.30x)",
            r.seconds / e.seconds
        );
    }
    Ok(())
}
