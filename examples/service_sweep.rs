//! A Fig. 8-style **multi-ruleset sweep through one serving engine**: the
//! realistic DFM-library workload the paper targets is many small
//! per-ruleset generation requests, not one giant batch. A single
//! [`PatternService`] owns the trained model and a persistent worker
//! pool; every rule set is submitted as its own request, and the
//! scheduler fills each denoising micro-batch with lanes from *all* of
//! them — cross-request batching without giving up a single bit of
//! reproducibility.
//!
//! The example also *checks* the serving determinism contract: after the
//! concurrent sweep, one rule set is re-run alone on a fresh single-thread
//! service and must match the contended run byte for byte.
//!
//! ```text
//! cargo run --release --example service_sweep
//! ```
//!
//! Environment knobs: `DP_TRAIN_ITERS` (default 150), `DP_COUNT` (patterns
//! per rule set, default 6), `DP_THREADS` (default 0 = all cores),
//! `DP_SEED`.

use diffpattern::drc::{check_pattern, DesignRules};
use diffpattern::{PatternService, Pipeline, PipelineConfig, RequestSpec};
use diffpattern_suite::{env_knob, example_rng};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let train_iters = env_knob("DP_TRAIN_ITERS", 150);
    let count = env_knob("DP_COUNT", 6);
    let seed = env_knob("DP_SEED", 42) as u64;

    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    println!("training for {train_iters} iterations...");
    let _ = pipeline.train(train_iters, &mut rng)?;
    let base = pipeline.request_spec(count).seed(seed);
    let model = Arc::new(pipeline.into_trained_model()?);

    let rule_sets = [
        ("standard", DesignRules::standard()),
        ("larger-space", DesignRules::larger_space()),
        ("smaller-area", DesignRules::smaller_area()),
    ];

    // One engine for the whole sweep: one model, one pool, N requests.
    let service = PatternService::builder(Arc::clone(&model))
        .threads(env_knob("DP_THREADS", 0))
        .build()?;
    println!(
        "serving {} rule sets x {count} patterns on {} worker(s), micro-batch {}...\n",
        rule_sets.len(),
        service.threads(),
        service.micro_batch()
    );

    let start = Instant::now();
    let mut handles = Vec::new();
    for (name, rules) in rule_sets {
        let spec = RequestSpec {
            rules,
            ..base.clone()
        };
        handles.push((name, rules, service.submit(&spec)?));
    }
    let mut sweep = Vec::new();
    for (name, rules, handle) in handles {
        let batch = handle.wait()?;
        sweep.push((name, rules, batch));
    }
    let elapsed = start.elapsed();

    println!(
        "{:<14} {:>8} {:>9} {:>10} {:>9}",
        "rules", "patterns", "shortfall", "attempts", "clean"
    );
    for (name, rules, batch) in &sweep {
        let attempts: usize = batch.items.iter().map(|g| g.provenance.attempts).sum();
        let clean = batch
            .items
            .iter()
            .filter(|g| check_pattern(&g.pattern, rules).is_clean())
            .count();
        assert_eq!(
            clean,
            batch.items.len(),
            "every served pattern is DRC-clean"
        );
        println!(
            "{:<14} {:>8} {:>9} {:>10} {:>6}/{}",
            name,
            batch.items.len(),
            batch.report.shortfall,
            attempts,
            clean,
            batch.items.len()
        );
    }
    println!(
        "\nsweep wall-clock: {:.3} s ({} requests sharing one engine)",
        elapsed.as_secs_f64(),
        sweep.len()
    );

    // Load-independence check: the standard-rules request, re-run alone on
    // a single worker, must be bit-identical to its contended run above.
    let solo_service = PatternService::builder(model).threads(1).build()?;
    let solo = solo_service.generate(&base)?;
    assert_eq!(
        solo.items, sweep[0].2.items,
        "a request's output must not depend on concurrent load"
    );
    println!("determinism check passed: solo run == contended run, bit for bit");
    Ok(())
}
