//! Quickstart: the full DiffPattern loop on a small synthetic dataset.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Environment knobs: `DP_TRAIN_ITERS` (default 150), `DP_GENERATE`
//! (default 8), `DP_SEED`.

use diffpattern::render::pattern_to_ascii;
use diffpattern::{Pipeline, PipelineConfig};
use diffpattern_suite::{env_knob, example_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let train_iters = env_knob("DP_TRAIN_ITERS", 150);
    let generate = env_knob("DP_GENERATE", 8);

    println!("=== DiffPattern quickstart ===");
    let config = PipelineConfig::tiny();
    let mut pipeline = Pipeline::from_synthetic_map(config, &mut rng)?;
    let ds = pipeline.dataset().report;
    println!(
        "dataset: {} tiles accepted ({} too complex, {} unsplittable)",
        ds.accepted, ds.too_complex, ds.unsplittable
    );
    println!(
        "real-pattern library: {} patterns, diversity H = {:.4} bits",
        pipeline.dataset().library().len(),
        pipeline.dataset().library().diversity()
    );

    println!("training the discrete diffusion model for {train_iters} iterations...");
    let report = pipeline.train(train_iters, &mut rng)?;
    println!(
        "loss: {:.4} -> {:.4}",
        report.head_mean(10),
        report.tail_mean(10)
    );

    println!("generating {generate} legal patterns (sample -> pre-filter -> solve)...");
    let patterns = pipeline.generate_legal_patterns(generate, &mut rng)?;
    let r = pipeline.report();
    println!(
        "sampled {} topologies, pre-filter rejected {} / repaired {}, solver failures {}, legal patterns {}",
        r.topologies_sampled,
        r.prefilter_rejected,
        r.prefilter_repaired,
        r.solver_failures,
        r.legal_patterns
    );

    for (i, p) in patterns.iter().take(2).enumerate() {
        let drc = diffpattern::drc::check_pattern(p, &pipeline.config().rules);
        println!(
            "\npattern {i}: complexity {:?}, DRC clean = {}",
            p.complexity(),
            drc.is_clean()
        );
        println!("{}", pattern_to_ascii(p, 48, 24));
    }
    Ok(())
}
