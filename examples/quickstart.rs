//! Quickstart: the full DiffPattern loop on a small synthetic dataset,
//! through the train/infer split — train a [`Pipeline`], freeze a
//! [`TrainedModel`], batch-generate with a [`GenerationSession`].
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Environment knobs: `DP_TRAIN_ITERS` (default 150), `DP_GENERATE`
//! (default 8), `DP_THREADS` (default 0 = all cores), `DP_SEED`.

use diffpattern::render::pattern_to_ascii;
use diffpattern::{Pipeline, PipelineConfig};
use diffpattern_suite::{env_knob, example_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let train_iters = env_knob("DP_TRAIN_ITERS", 150);
    let generate = env_knob("DP_GENERATE", 8);
    let threads = env_knob("DP_THREADS", 0);

    println!("=== DiffPattern quickstart ===");
    let config = PipelineConfig::tiny();
    let mut pipeline = Pipeline::from_synthetic_map(config, &mut rng)?;
    let ds = pipeline.dataset().report;
    println!(
        "dataset: {} tiles accepted ({} too complex, {} unsplittable)",
        ds.accepted, ds.too_complex, ds.unsplittable
    );
    println!(
        "real-pattern library: {} patterns, diversity H = {:.4} bits",
        pipeline.dataset().library().len(),
        pipeline.dataset().library().diversity()
    );

    println!("training the discrete diffusion model for {train_iters} iterations...");
    let report = pipeline.train(train_iters, &mut rng)?;
    println!(
        "loss: {:.4} -> {:.4}",
        report.head_mean(10),
        report.tail_mean(10)
    );

    // Freeze training into an immutable, shareable model, then generate
    // through a session: sample -> pre-filter -> solve, across threads.
    let model = pipeline.trained_model()?;
    let session = pipeline
        .session_builder(&model)
        .threads(threads)
        .seed(env_knob("DP_SEED", 42) as u64)
        .build()?;
    println!(
        "generating {generate} legal patterns on {} threads...",
        session.threads()
    );
    let batch = session.generate(generate)?;
    let r = batch.report;
    println!(
        "sampled {} topologies, pre-filter rejected {} / repaired {}, solver failures {}, \
         legal patterns {}, shortfall {}",
        r.topologies_sampled,
        r.prefilter_rejected,
        r.prefilter_repaired,
        r.solver_failures,
        r.legal_patterns,
        r.shortfall
    );

    for g in batch.items.iter().take(2) {
        let drc = diffpattern::drc::check_pattern(&g.pattern, session.rules());
        println!(
            "\npattern {} (seed {:#x}, {} attempts): complexity {:?}, DRC clean = {}",
            g.provenance.index,
            g.provenance.seed,
            g.provenance.attempts,
            g.pattern.complexity(),
            drc.is_clean()
        );
        println!("{}", pattern_to_ascii(&g.pattern, 48, 24));
    }
    Ok(())
}
