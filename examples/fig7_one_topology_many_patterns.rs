//! Reproduces paper Fig. 7: several different legal layout patterns
//! generated from a *single* topology under the same design rules —
//! the DiffPattern-L mechanism.
//!
//! ```text
//! cargo run --release --example fig7_one_topology_many_patterns
//! ```

use diffpattern::drc::{check_pattern, DesignRules};
use diffpattern::geometry::BitGrid;
use diffpattern::legalize::{Solver, SolverConfig};
use diffpattern::render::pattern_to_ascii;
use diffpattern::squish::SquishPattern;
use diffpattern_suite::{env_knob, example_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let variants = env_knob("DP_VARIANTS", 6);

    // A representative generated topology: two bars and an L-hook, as in
    // the paper's figure.
    let topology = BitGrid::from_ascii(
        "........
         .##..#..
         .##..#..
         .....#..
         .###.##.
         .###....
         ........
         ........",
    )?;
    println!("topology ({}x{}):", topology.width(), topology.height());
    println!("{}", diffpattern::render::grid_to_ascii(&topology));

    let rules = DesignRules::standard();
    let solver = Solver::new(rules, SolverConfig::for_window(2048, 2048));
    let solutions = solver.solve_many(&topology, variants, &mut rng);
    println!(
        "found {} distinct legal geometric-vector assignments:\n",
        solutions.len()
    );

    for (i, s) in solutions.iter().enumerate() {
        let pattern = SquishPattern::new(topology.clone(), s.dx.clone(), s.dy.clone())?;
        let report = check_pattern(&pattern, &rules);
        println!(
            "--- pattern ({}) : DRC clean = {}, dx[0..4] = {:?} ---",
            (b'a' + i as u8) as char,
            report.is_clean(),
            &s.dx[..4.min(s.dx.len())]
        );
        println!("{}", pattern_to_ascii(&pattern, 48, 20));
    }
    Ok(())
}
