//! Reproduces the paper's §IV-F discussion: why DiffPattern refuses the
//! "pattern validity" metric of prior work.
//!
//! Validity scores generated patterns by how well an auto-encoder
//! pre-trained on the training set reconstructs them. The paper's
//! critique: (a) legal-but-novel patterns — the entire purpose of pattern
//! generation — score *worse* than memorised ones, and (b) prior work's
//! generated sets outscored the held-out test set (65% → 84%), which is
//! only possible if the metric rewards overfitting.
//!
//! This example measures both effects on the synthetic dataset:
//!
//! ```text
//! cargo run --release --example validity_critique
//! ```

use diffpattern::baselines::{AeConfig, Cae, ValidityScorer};
use diffpattern::geometry::BitGrid;
use diffpattern::{Pipeline, PipelineConfig};
use diffpattern_suite::{env_knob, example_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let scorer_iters = env_knob("DP_AE_ITERS", 400);
    let train_iters = env_knob("DP_TRAIN_ITERS", 4000);
    let generate = env_knob("DP_GENERATE", 40);

    // Split the tiles into train/test halves like the paper's protocol.
    let pipeline_cfg = PipelineConfig::tiny();
    let mut pipeline = Pipeline::from_synthetic_map(pipeline_cfg, &mut rng)?;
    let grids: Vec<BitGrid> = pipeline
        .dataset()
        .tensors
        .iter()
        .map(|t| t.unfold())
        .collect();
    let split = grids.len() * 3 / 4;
    let (train_grids, test_grids) = grids.split_at(split);

    println!("fitting the validity scorer on {} training grids...", split);
    let ae = AeConfig {
        side: pipeline.config().dataset.matrix_side,
        features: 8,
        latent: 32,
    };
    let mut scorer = ValidityScorer::fit(ae, train_grids, scorer_iters, &mut rng);

    println!(
        "training DiffPattern for {train_iters} iterations and generating {generate} topologies..."
    );
    let _ = pipeline.train(train_iters, &mut rng)?;
    let model = pipeline.trained_model()?;
    let session = pipeline
        .session_builder(&model)
        .seed(env_knob("DP_SEED", 42) as u64)
        .build()?;
    let (diffpattern_topos, _) = session.sample_topologies(generate);

    // An overfit generator: a CAE that memorises the training set and
    // regurgitates lightly perturbed reconstructions.
    println!("training an overfit CAE generator...");
    let mut cae = Cae::new(ae, &mut rng);
    let _ = cae.train(train_grids, scorer_iters, 8, &mut rng);
    let overfit: Vec<BitGrid> = (0..generate)
        .map(|_| cae.generate(train_grids, 0.1, &mut rng))
        .collect();

    let v_train = scorer.validity_pct(train_grids);
    let v_test = scorer.validity_pct(test_grids);
    let v_overfit = scorer.validity_pct(&overfit);
    let v_diff = scorer.validity_pct(&diffpattern_topos);

    println!(
        "\n=== validity percentages (threshold = {:.4} BCE) ===",
        scorer.threshold()
    );
    println!("{:<28} {:>8.1}%", "training set", v_train);
    println!("{:<28} {:>8.1}%", "held-out test set", v_test);
    println!("{:<28} {:>8.1}%", "overfit CAE generator", v_overfit);
    println!("{:<28} {:>8.1}%", "DiffPattern (novel, legal)", v_diff);

    println!("\npaper's §IV-F points, measured here:");
    if v_overfit >= v_test {
        println!(
            "  (a) the overfit generator ({v_overfit:.1}%) matches or beats the honest \
             test set ({v_test:.1}%) — the metric rewards memorisation"
        );
    } else {
        println!(
            "  (a) overfit generator {v_overfit:.1}% vs test {v_test:.1}% — effect not \
             visible at this scale"
        );
    }
    println!(
        "  (b) DiffPattern's novel-but-legal patterns score {v_diff:.1}% — diversity is \
         penalised even though every pattern is DRC-clean; this is why the paper \
         evaluates with diversity + legality instead"
    );
    Ok(())
}
