//! Reproduces paper Fig. 9: the joint complexity distribution (c_x, c_y)
//! of the real pattern library versus DiffPattern's generated library,
//! printed as ASCII heat maps and written as CSV for external plotting.
//!
//! The generated side is built through the durable pattern store
//! (`dp_library`): legal patterns are ingested (deduplicated, CRC-framed)
//! into `DP_LIBRARY` and the figure is derived from the store's own
//! incremental complexity histogram — the same numbers `dpgen library
//! stat` and `results.md` report, so the figure and the accounting can
//! never disagree. Rerunning resumes the store instead of regenerating.
//!
//! ```text
//! cargo run --release --example fig9_complexity_distribution
//! ```
//!
//! Environment knobs: `DP_TRAIN_ITERS` (default 200), `DP_GENERATE`
//! (default 64), `DP_CSV` (output path, default `fig9_complexity.csv`),
//! `DP_LIBRARY` (store directory, default `fig9_library/`).

use diffpattern::datagen::PatternLibrary;
use diffpattern::library::{LibraryConfig, LibraryWriter};
use diffpattern::{Pipeline, PipelineConfig};
use diffpattern_suite::{env_knob, example_rng};
use std::io::Write;

const METHOD: &str = "diffpattern";
const RULESET: &str = "tiny";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = example_rng();
    let train_iters = env_knob("DP_TRAIN_ITERS", 200);
    let generate = env_knob("DP_GENERATE", 64);

    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    let real = pipeline.dataset().library();
    println!(
        "real library: {} patterns, H = {:.4} bits",
        real.len(),
        real.diversity()
    );

    println!("training for {train_iters} iterations...");
    let _ = pipeline.train(train_iters, &mut rng)?;
    let lib_dir = std::env::var("DP_LIBRARY").unwrap_or_else(|_| "fig9_library".into());
    let mut writer = LibraryWriter::open(&lib_dir, LibraryConfig::default())?;
    let cursor = writer.open_bucket(METHOD, RULESET, 0)? as usize;
    if cursor < generate {
        println!("generating items {cursor}..{generate} into {lib_dir}...");
        let model = pipeline.trained_model()?;
        let session = pipeline
            .session_builder(&model)
            .seed(env_knob("DP_SEED", 42) as u64)
            .build()?;
        let batch = session.generate(generate)?;
        for generated in batch.items.iter().skip(cursor) {
            writer.ingest_arrival(METHOD, RULESET, &generated.pattern, true)?;
        }
    } else {
        println!("{lib_dir} already holds items 0..{cursor}; nothing to generate");
    }
    let store = writer.finish()?;
    let stats = store.stats(METHOD, RULESET).expect("bucket exists");
    let generated = store.histogram(METHOD, RULESET).expect("bucket exists");
    println!(
        "generated library: {} stored patterns ({} duplicates absorbed), H = {:.4} bits",
        stats.accepted,
        stats.duplicates,
        generated.diversity()
    );

    let max_side = pipeline.config().dataset.matrix_side;
    println!("\nReal Patterns (log density):");
    print_heatmap(&real, max_side);
    println!("\nDiffPattern (log density):");
    print_heatmap(generated, max_side);

    // CSV: library,cx,cy,count
    let path = std::env::var("DP_CSV").unwrap_or_else(|_| "fig9_complexity.csv".into());
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "library,cx,cy,count")?;
    for ((cx, cy), n) in real.histogram() {
        writeln!(file, "real,{cx},{cy},{n}")?;
    }
    for ((cx, cy), n) in generated.histogram() {
        writeln!(file, "diffpattern,{cx},{cy},{n}")?;
    }
    println!("\nwrote {path}");
    Ok(())
}

/// Prints a coarse ASCII heat map of the complexity histogram, binned to a
/// 16x16 grid over [0, max_side]².
fn print_heatmap(lib: &PatternLibrary, max_side: usize) {
    const BINS: usize = 16;
    let mut grid = vec![0usize; BINS * BINS];
    for ((cx, cy), n) in lib.histogram() {
        let bx = (cx * BINS / (max_side + 1)).min(BINS - 1);
        let by = (cy * BINS / (max_side + 1)).min(BINS - 1);
        grid[by * BINS + bx] += n;
    }
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    let max = grid.iter().copied().max().unwrap_or(1).max(1);
    for by in (0..BINS).rev() {
        let mut line = String::new();
        for bx in 0..BINS {
            let v = grid[by * BINS + bx];
            let shade = if v == 0 {
                0
            } else {
                // Log scale, like the paper's colour bar.
                let f = (v as f64).ln() / (max as f64).ln().max(1.0);
                1 + ((shades.len() - 2) as f64 * f).round() as usize
            };
            line.push(shades[shade.min(shades.len() - 1)]);
        }
        println!("  cy bin {by:2} |{line}|");
    }
}
