//! End-to-end smoke test of the **real** `dpserve` binary — what the CI
//! serving step runs. Spawns the binary in demo mode on an ephemeral
//! port, waits for its `listening on ADDR` line, drives one generation
//! stream and a `/metrics` scrape through the client module, and exits
//! non-zero on any failure.
//!
//! ```text
//! cargo build --release --bin dpserve
//! cargo run --release --example serve_smoke
//! DPSERVE_BIN=target/release/dpserve cargo run --release --example serve_smoke
//! ```

use diffpattern::RequestSpec;
use dp_serve::{Client, Json};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kills the child on every exit path (including panics).
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bin = std::env::var("DPSERVE_BIN").unwrap_or_else(|_| {
        let profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        format!("target/{profile}/dpserve")
    });
    eprintln!("spawning {bin} --demo ...");
    let mut child = Command::new(&bin)
        .args(["--demo", "--iters", "60", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn {bin}: {e} (build the dpserve binary first)"))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let child = Reaper(child);

    // The binary prints exactly one `listening on ADDR` line once bound.
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .ok_or("dpserve exited before announcing its address")??;
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().parse::<std::net::SocketAddr>()?;
        }
    };
    eprintln!("server up on {addr}; submitting a request...");

    let mut client = Client::connect(addr)?;
    client.set_read_timeout(Some(Duration::from_secs(300)))?;
    let spec = RequestSpec::new(2).seed(7);
    let outcome = client.generate(&spec)?;
    assert_eq!(outcome.requested, 2, "server must echo the requested count");
    assert_eq!(
        outcome.items.len() + outcome.report.shortfall,
        2,
        "stream accounting must close: {:?}",
        outcome.report
    );
    assert!(outcome.error.is_none(), "{:?}", outcome.error);

    // The client sees the terminal chunk before the engine worker's
    // bookkeeping settles (lanes_in_flight decrement, requests_completed
    // bump happen just after the flush), so poll rather than scrape once.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let metrics = loop {
        let metrics = client.metrics()?;
        let completed = metrics
            .get("requests_completed")
            .and_then(Json::as_int)
            .ok_or("metrics missing requests_completed")?;
        let in_flight = metrics
            .get("scheduler")
            .and_then(|s| s.get("lanes_in_flight"))
            .and_then(Json::as_int)
            .ok_or("metrics missing scheduler.lanes_in_flight")?;
        if completed == 1 && in_flight == 0 {
            break metrics;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never settled to completed=1 / in-flight=0: {metrics:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let streamed = metrics.get("items_streamed").and_then(Json::as_int);
    assert_eq!(streamed, Some(outcome.items.len() as i128), "{metrics:?}");

    eprintln!(
        "smoke OK: {} items streamed, shortfall {}, metrics parsed",
        outcome.items.len(),
        outcome.report.shortfall
    );
    drop(child); // kill + reap
    Ok(())
}
