//! Integration validation of the diffusion mathematics at the paper's
//! full schedule scale (K = 1000, β: 0.01 → 0.5), independent of any
//! neural network.

use diffpattern::diffusion::{
    forward_sample, NoiseSchedule, OracleDenoiser, Sampler, UniformDenoiser,
};
use diffpattern::squish::DeepSquishTensor;
use rand::SeedableRng;

#[test]
fn paper_schedule_converges_to_uniform() {
    // Paper Eq. 6 with the §IV-A hyperparameters.
    let schedule = NoiseSchedule::linear(1000, 0.01, 0.5).unwrap();
    assert!((schedule.cumulative_flip(1000) - 0.5).abs() < 1e-9);
    // Convergence happens well before K, as the linearly-increasing
    // schedule intends.
    let mix = schedule.mixing_step(1e-6).expect("must mix");
    assert!(mix < 500, "mixed only at step {mix}");
}

#[test]
fn oracle_reconstruction_at_paper_scale() {
    // Reverse ancestral sampling with a confident oracle over the full
    // 1000-step schedule reconstructs the target almost exactly — the
    // posterior/mixture algebra is correct end to end.
    let schedule = NoiseSchedule::linear(1000, 0.01, 0.5).unwrap();
    let sampler = Sampler::new(schedule);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let bits: Vec<bool> = (0..256).map(|i| (i % 7) < 3).collect();
    let x0 = DeepSquishTensor::from_bits(4, 8, bits).unwrap();
    let mut oracle = OracleDenoiser::new(x0.clone(), 0.999);
    let out = sampler.sample_one(&mut oracle, 4, 8, &mut rng);
    let hamming: usize = out
        .bits()
        .iter()
        .zip(x0.bits())
        .filter(|(a, b)| a != b)
        .count();
    assert!(hamming <= 2, "hamming distance {hamming}");
}

#[test]
fn forward_noise_increases_monotonically_in_expectation() {
    let schedule = NoiseSchedule::linear(1000, 0.01, 0.5).unwrap();
    let x0 = DeepSquishTensor::from_bits(1, 16, vec![true; 256]).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut prev_flips = 0usize;
    for k in [1usize, 50, 200, 1000] {
        // Average over a few draws to tame variance.
        let mut flips = 0usize;
        for _ in 0..8 {
            let xk = forward_sample(&x0, &schedule, k, &mut rng);
            flips += xk.bits().iter().filter(|&&b| !b).count();
        }
        flips /= 8;
        assert!(
            flips + 20 >= prev_flips,
            "noise decreased: {prev_flips} -> {flips} at k={k}"
        );
        prev_flips = flips;
    }
    // At k = K the sample is essentially a fair coin.
    assert!(
        (prev_flips as i64 - 128).abs() < 40,
        "final flips {prev_flips}"
    );
}

#[test]
fn uniform_denoiser_yields_half_density() {
    let schedule = NoiseSchedule::linear(100, 0.01, 0.5).unwrap();
    let sampler = Sampler::new(schedule);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut d = UniformDenoiser::new();
    let samples = sampler.sample(&mut d, 1, 16, 8, &mut rng);
    let ones: usize = samples
        .iter()
        .map(|s| s.bits().iter().filter(|&&b| b).count())
        .sum();
    let frac = ones as f64 / (8.0 * 256.0);
    assert!((frac - 0.5).abs() < 0.05, "{frac}");
}
