//! Integration tests for the train/infer split: `TrainedModel` round-trip,
//! thread-count-invariant determinism, shortfall surfacing, and the
//! `PatternSource` interface.

use diffpattern::drc::{check_pattern, DesignRules};
use diffpattern::legalize::SolverConfig;
use diffpattern::{DiffusionSource, PatternSource, Pipeline, PipelineConfig, TrainedModel};
use rand::SeedableRng;

fn trained_pipeline(seed: u64, iters: usize) -> Pipeline {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
    let _ = pipeline.train(iters, &mut rng).unwrap();
    pipeline
}

#[test]
fn batch_generation_is_bit_identical_across_micro_batch_sizes_and_threads() {
    // The tentpole contract of the micro-batched engine: neither the
    // number of lock-step denoising lanes nor the worker count may change
    // a single bit of the output — only the per-item seeds do.
    let pipeline = trained_pipeline(60, 4);
    let model = pipeline.trained_model().unwrap();
    let run = |micro_batch: usize, threads: usize| {
        let session = pipeline
            .session_builder(&model)
            .micro_batch(micro_batch)
            .threads(threads)
            .seed(31)
            .build()
            .unwrap();
        session.generate(6).unwrap()
    };
    let reference = run(1, 1);
    assert_eq!(
        reference.items.len() + reference.report.shortfall,
        6,
        "accounting must be closed"
    );
    for micro_batch in [1usize, 3, 8] {
        for threads in [1usize, 2, 4] {
            let other = run(micro_batch, threads);
            assert_eq!(
                reference.items, other.items,
                "micro_batch={micro_batch} threads={threads} changed the batch"
            );
            assert_eq!(reference.report, other.report);
        }
    }
}

#[test]
fn empty_and_undersized_batches_are_well_defined() {
    // Regression tests for the atomic-counter sharding edge cases:
    // `generate(0)` and `micro_batch > count` must neither panic nor hang,
    // and an empty batch reports zero work everywhere.
    let pipeline = trained_pipeline(61, 3);
    let model = pipeline.trained_model().unwrap();
    for (micro_batch, threads) in [(1usize, 1usize), (8, 1), (8, 4), (64, 3)] {
        let session = pipeline
            .session_builder(&model)
            .micro_batch(micro_batch)
            .threads(threads)
            .seed(5)
            .build()
            .unwrap();
        // Empty batch.
        let empty = session.generate(0).unwrap();
        assert!(empty.items.is_empty());
        assert_eq!(empty.report.shortfall, 0);
        assert_eq!(empty.report.topologies_sampled, 0);
        assert_eq!(empty.report.legal_patterns, 0);
        let (topologies, report) = session.sample_topologies(0);
        assert!(topologies.is_empty());
        assert_eq!(report.shortfall, 0);
        // Batch smaller than one micro-batch (and than the thread count).
        let small = session.generate(2).unwrap();
        assert_eq!(small.items.len() + small.report.shortfall, 2);
        let indices: Vec<usize> = small.items.iter().map(|g| g.provenance.index).collect();
        assert!(indices.iter().all(|&i| i < 2));
    }
    // Undersized batches equal the full-size path item for item.
    let reference = pipeline
        .session_builder(&model)
        .micro_batch(1)
        .threads(1)
        .seed(5)
        .build()
        .unwrap()
        .generate(2)
        .unwrap();
    let oversized = pipeline
        .session_builder(&model)
        .micro_batch(64)
        .threads(3)
        .seed(5)
        .build()
        .unwrap()
        .generate(2)
        .unwrap();
    assert_eq!(reference.items, oversized.items);
    assert_eq!(reference.report, oversized.report);
}

#[test]
fn batch_generation_is_bit_identical_across_thread_counts() {
    let pipeline = trained_pipeline(50, 4);
    let model = pipeline.trained_model().unwrap();
    let run = |threads: usize| {
        let session = pipeline
            .session_builder(&model)
            .threads(threads)
            .seed(99)
            .build()
            .unwrap();
        session.generate(6).unwrap()
    };
    let serial = run(1);
    for threads in [2, 4, 7] {
        let parallel = run(threads);
        assert_eq!(
            serial.items, parallel.items,
            "{threads} threads changed the batch"
        );
        assert_eq!(serial.report, parallel.report);
    }
    // And a different seed gives a different batch (the seed is the knob).
    let session = pipeline
        .session_builder(&model)
        .threads(1)
        .seed(100)
        .build()
        .unwrap();
    let other = session.generate(6).unwrap();
    assert_ne!(serial.items, other.items);
}

#[test]
fn repeated_batches_are_bit_identical_run_to_run() {
    // Regression guard for the workspace/prepack engine: reusing a
    // session (and therefore its workers' warm sampling scratch) across
    // batches must not change a single bit of what gets generated — at a
    // fixed seed and thread count, run N equals run 1 exactly.
    let pipeline = trained_pipeline(51, 4);
    let model = pipeline.trained_model().unwrap();
    for threads in [1usize, 3] {
        let session = pipeline
            .session_builder(&model)
            .threads(threads)
            .seed(7)
            .build()
            .unwrap();
        let first = session.generate(5).unwrap();
        for run in 0..2 {
            let again = session.generate(5).unwrap();
            assert_eq!(
                first.items, again.items,
                "repeat {run} at {threads} threads diverged"
            );
            assert_eq!(first.report, again.report);
        }
    }
}

#[test]
fn session_patterns_are_drc_clean_with_provenance() {
    let pipeline = trained_pipeline(51, 5);
    let model = pipeline.trained_model().unwrap();
    let session = pipeline
        .session_builder(&model)
        .threads(2)
        .seed(3)
        .build()
        .unwrap();
    let batch = session.generate(4).unwrap();
    assert!(!batch.items.is_empty(), "session produced nothing");
    let mut last_index = None;
    for g in &batch.items {
        let report = check_pattern(&g.pattern, session.rules());
        assert!(report.is_clean(), "{:?}", report.violations());
        assert_eq!(g.pattern.width(), 2048);
        assert_eq!(g.pattern.height(), 2048);
        assert!(g.provenance.attempts >= 1);
        // Items come back in index order.
        assert!(Some(g.provenance.index) > last_index);
        last_index = Some(g.provenance.index);
    }
    // Accounting is closed: every requested slot is a pattern or shortfall.
    assert_eq!(batch.items.len() + batch.report.shortfall, 4);
}

#[test]
fn single_worker_streaming_is_in_index_order() {
    // With one worker the engine claims chunks in index order and the
    // inline path drains the channel between chunks, so the streaming
    // callback sees items in index order as they complete.
    let pipeline = trained_pipeline(57, 4);
    let model = pipeline.trained_model().unwrap();
    let session = pipeline
        .session_builder(&model)
        .threads(1)
        .micro_batch(2)
        .seed(6)
        .build()
        .unwrap();
    let mut indices = Vec::new();
    let report = session
        .generate_streaming(5, |g| indices.push(g.provenance.index))
        .unwrap();
    assert_eq!(indices.len() + report.shortfall, 5);
    assert!(indices.windows(2).all(|w| w[0] < w[1]), "{indices:?}");
}

#[test]
fn streaming_delivers_every_item() {
    let pipeline = trained_pipeline(52, 4);
    let model = pipeline.trained_model().unwrap();
    let session = pipeline
        .session_builder(&model)
        .threads(3)
        .seed(5)
        .build()
        .unwrap();
    let mut streamed = 0usize;
    let report = session.generate_streaming(5, |_| streamed += 1).unwrap();
    assert_eq!(streamed + report.shortfall, 5);
    assert_eq!(report.legal_patterns, streamed);
}

#[test]
fn exhausted_attempts_surface_as_shortfall_not_silence() {
    // Regression test for the silent-shortfall bug: with rules the solver
    // cannot satisfy, every slot must be reported, not dropped.
    let pipeline = trained_pipeline(53, 3);
    let model = pipeline.trained_model().unwrap();
    let harsh = DesignRules::builder()
        .space_min(900)
        .width_min(900)
        .area_range(1, i128::MAX / 4)
        .build()
        .unwrap();
    let session = pipeline
        .session_builder(&model)
        .rules(harsh)
        .solver_config(SolverConfig {
            max_iterations: 20,
            max_restarts: 1,
            ..SolverConfig::for_window(2048, 2048)
        })
        .max_attempts(2)
        .threads(2)
        .seed(11)
        .build()
        .unwrap();
    let batch = session.generate(3).unwrap();
    assert_eq!(batch.items.len() + batch.report.shortfall, 3);
    if batch.items.is_empty() {
        assert_eq!(batch.report.shortfall, 3);
        assert!(batch.report.solver_failures >= 3);
    }
}

#[test]
fn model_save_load_round_trip_generates_identically() {
    let pipeline = trained_pipeline(54, 4);
    let model = pipeline.trained_model().unwrap();
    let restored = TrainedModel::load(&model.save()).unwrap();

    let generate = |m: &TrainedModel| {
        let session = pipeline
            .session_builder(m)
            .threads(2)
            .seed(8)
            .build()
            .unwrap();
        session.generate(3).unwrap().items
    };
    assert_eq!(generate(&model), generate(&restored));
}

#[test]
fn pattern_source_interface_drives_the_service() {
    let pipeline = trained_pipeline(55, 4);
    let model = std::sync::Arc::new(pipeline.trained_model().unwrap());
    let service = diffpattern::PatternService::builder(model)
        .threads(1)
        .build()
        .unwrap();
    let spec = pipeline.request_spec(0).seed(2);
    let rules = spec.rules;
    let mut source: Box<dyn PatternSource + '_> =
        Box::new(DiffusionSource::new(&service, spec, "DiffPattern-S"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let batch = source.generate(3, &mut rng).unwrap();
    assert_eq!(source.name(), "DiffPattern-S");
    assert_eq!(batch.topologies, Some(batch.patterns.len()));
    for p in &batch.patterns {
        assert!(check_pattern(p, &rules).is_clean());
    }
}

#[test]
fn invalid_session_configs_are_rejected() {
    use diffpattern::ConfigError;
    let pipeline = trained_pipeline(56, 3);
    let model = pipeline.trained_model().unwrap();
    assert!(matches!(
        pipeline.session_builder(&model).sample_stride(0).build(),
        Err(ConfigError::ZeroStride)
    ));
    assert!(matches!(
        pipeline.session_builder(&model).max_attempts(0).build(),
        Err(ConfigError::ZeroAttempts)
    ));
    assert!(matches!(
        pipeline.session_builder(&model).micro_batch(0).build(),
        Err(ConfigError::ZeroMicroBatch)
    ));
    assert!(matches!(
        pipeline
            .session_builder(&model)
            .solver_config(SolverConfig::for_window(8, 2048))
            .build(),
        Err(ConfigError::WindowTooSmall { .. })
    ));
}
