//! Cross-crate integration: the full DiffPattern pipeline from synthetic
//! map to DRC-clean patterns, through both the borrowing session API and
//! the owned `PatternService`.

use diffpattern::drc::check_pattern;
use diffpattern::{PatternService, Pipeline, PipelineConfig};
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn pipeline_produces_only_legal_patterns() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
    let _ = pipeline.train(5, &mut rng).unwrap();
    let model = pipeline.trained_model().unwrap();
    let session = pipeline.session_builder(&model).seed(11).build().unwrap();
    let batch = session.generate(4).unwrap();
    assert!(!batch.items.is_empty(), "pipeline produced nothing");
    for g in &batch.items {
        let report = check_pattern(&g.pattern, session.rules());
        assert!(report.is_clean(), "{:?}", report.violations());
        // Window pinning (Eq. 14 sum constraints).
        assert_eq!(g.pattern.width(), 2048);
        assert_eq!(g.pattern.height(), 2048);
    }
}

#[test]
fn service_report_is_consistent() {
    // The serving path keeps the closed accounting the old shim test
    // pinned: every requested slot is a pattern or a counted shortfall,
    // and the per-request report adds up.
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
    let _ = pipeline.train(5, &mut rng).unwrap();
    let spec = pipeline.request_spec(5).seed(12);
    let model = Arc::new(pipeline.into_trained_model().unwrap());
    let service = PatternService::builder(model).threads(2).build().unwrap();
    let batch = service.generate(&spec).unwrap();
    let r = batch.report;
    assert_eq!(batch.items.len() + r.shortfall, 5);
    assert_eq!(r.legal_patterns, batch.items.len());
    assert!(
        r.topologies_sampled >= batch.items.len(),
        "every delivered pattern consumed at least one sample"
    );
    assert!(
        r.topologies_sampled <= 5 * 4,
        "attempt budget bounds the sampling volume"
    );
}

#[test]
fn strict_prefilter_rejects_instead_of_repairing() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut config = PipelineConfig::tiny();
    config.repair_bowties = false;
    let mut pipeline = Pipeline::from_synthetic_map(config, &mut rng).unwrap();
    let _ = pipeline.train(3, &mut rng).unwrap();
    let model = pipeline.trained_model().unwrap();
    let session = pipeline.session_builder(&model).seed(13).build().unwrap();
    let (topos, report) = session.sample_topologies(2);
    assert_eq!(report.prefilter_repaired, 0);
    // Every returned topology is genuinely bow-tie free.
    for t in &topos {
        assert!(diffpattern::geometry::bowtie::is_bowtie_free(t));
    }
    // Closed accounting even in strict mode.
    assert_eq!(topos.len() + report.shortfall, 2);
}

#[test]
fn dataset_patterns_round_trip_through_all_crates() {
    // tiles -> squish -> extend -> fold -> unfold -> complexity matches.
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
    let ds = pipeline.dataset();
    for (tensor, pattern) in ds.tensors.iter().zip(&ds.patterns).take(8) {
        let unfolded = tensor.unfold();
        let core = diffpattern::squish::squish_to_core(&unfolded);
        assert_eq!(
            (core.width(), core.height()),
            pattern.complexity(),
            "fold/extend must preserve the canonical complexity"
        );
    }
}
