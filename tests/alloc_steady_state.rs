//! Proves the zero-allocation claim of the inference engine: once a
//! worker's [`SampleScratch`] is warm, the K-step denoising loop performs
//! **no per-step heap allocations**.
//!
//! Method: a counting global allocator tallies allocation events while one
//! sample is drawn through a 10-step chain and while one is drawn through
//! a 60-step chain (same model, same warm scratch). If any allocation
//! happened per denoising step, the 60-step count would exceed the
//! 10-step count by at least 50; the test asserts the counts are equal,
//! pinning the per-step allocation count to exactly zero without having
//! to hardcode the (small, constant) per-sample overhead.
//!
//! The allocator needs `unsafe` to delegate to the system allocator; the
//! workspace itself is `#![forbid(unsafe_code)]`.

#![allow(unsafe_code)]

use diffpattern::diffusion::{NeuralDenoiser, NoiseSchedule, SampleScratch, TrainedModel};
use diffpattern::nn::{with_inner_gemm_parallelism, UNet, UNetConfig};
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn counted<R>(f: impl FnOnce() -> R) -> (usize, R) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::SeqCst), out)
}

fn model(steps: usize) -> TrainedModel {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let config = UNetConfig {
        in_channels: 4,
        out_channels: 8,
        base_channels: 8,
        channel_mults: vec![1, 2],
        num_res_blocks: 1,
        attn_resolutions: vec![1],
        time_dim: 16,
        groups: 4,
        dropout: 0.0,
    };
    // Untrained weights: sampling cost and allocation behaviour are
    // architecture-bound, not weight-bound.
    let denoiser = NeuralDenoiser::new(UNet::new(&config, &mut rng));
    let schedule = NoiseSchedule::linear(steps, 0.01, 0.5).unwrap();
    TrainedModel::new(denoiser, schedule, 8).unwrap()
}

/// This file holds exactly one test so no sibling test thread can pollute
/// the global allocation counter.
#[test]
fn steady_state_sampling_allocates_nothing_per_denoising_step() {
    let short = model(10);
    let long = model(60);
    let sampler_short = short.sampler();
    let sampler_long = long.sampler();
    let mut scratch = SampleScratch::new();

    // Inner GEMM threads would allocate on spawn; sessions disable them in
    // workers, so the measurement mirrors the worker configuration.
    with_inner_gemm_parallelism(false, || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // Warm-up: first samples size the workspace pool and the p1
        // buffer.
        for _ in 0..2 {
            let _ = sampler_short.sample_one_with(&short, 4, 8, &mut rng, &mut scratch);
            let _ = sampler_long.sample_one_with(&long, 4, 8, &mut rng, &mut scratch);
        }

        let (short_allocs, _) =
            counted(|| sampler_short.sample_one_with(&short, 4, 8, &mut rng, &mut scratch));
        let (long_allocs, _) =
            counted(|| sampler_long.sample_one_with(&long, 4, 8, &mut rng, &mut scratch));

        // 50 extra denoising steps, zero extra allocations: the whole
        // loop runs out of the warm scratch. (The small constant is the
        // per-sample cost: the returned tensor itself.)
        assert_eq!(
            long_allocs, short_allocs,
            "per-step allocations detected: 10-step chain allocated {short_allocs}, \
             60-step chain allocated {long_allocs}"
        );
        assert!(
            short_allocs <= 4,
            "per-sample allocation overhead unexpectedly large: {short_allocs}"
        );
    });
}
