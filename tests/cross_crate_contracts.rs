//! Property-based contracts between crates: the DRC checker, the
//! constraint extractor and the legalization solver must agree on what
//! "legal" means, across randomly generated topologies.

use diffpattern::drc::{check_pattern, ConstraintSet, DesignRules};
use diffpattern::geometry::{bowtie, BitGrid};
use diffpattern::legalize::{Init, Solver, SolverConfig};
use diffpattern::squish::SquishPattern;
use proptest::prelude::*;
use rand::SeedableRng;

/// Random sparse topology without bow-ties (the class DiffPattern's
/// pre-filter admits).
fn random_topology(seed: u64, side: usize, density_pct: u32) -> BitGrid {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut grid = BitGrid::new(side, side).unwrap();
    // Place a few random rectangles, which never create bow-ties by
    // themselves; then clean any incidental corner contact.
    let shapes = 1 + (density_pct as usize % 5);
    for _ in 0..shapes {
        let w = rng.gen_range(1..=side / 2);
        let h = rng.gen_range(1..=side / 2);
        let c0 = rng.gen_range(0..side - w + 1);
        let r0 = rng.gen_range(0..side - h + 1);
        grid.fill_cells(c0, r0, c0 + w, r0 + h);
    }
    bowtie::repair_bowties(&mut grid);
    grid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the solver returns must pass the full DRC engine — not just
    /// the constraint oracle it optimised against.
    #[test]
    fn solver_output_is_always_drc_clean(seed in any::<u64>(), density in 0u32..100) {
        let topo = random_topology(seed, 10, density);
        let rules = DesignRules::standard();
        let solver = Solver::new(rules, SolverConfig::for_window(2048, 2048));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcd);
        if let Ok(solution) = solver.solve(&topo, Init::Random, &mut rng) {
            let pattern = SquishPattern::new(topo, solution.dx, solution.dy).unwrap();
            let report = check_pattern(&pattern, &rules);
            prop_assert!(report.is_clean(), "{:?}", report.violations());
        }
    }

    /// The constraint oracle and the DRC checker agree on arbitrary
    /// delta assignments.
    #[test]
    fn oracle_matches_checker(seed in any::<u64>()) {
        use rand::Rng;
        let topo = random_topology(seed, 8, 50);
        let rules = DesignRules::standard();
        let cs = ConstraintSet::extract(&topo, &rules);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1234);
        // Random positive deltas, not necessarily legal.
        let dx: Vec<i64> = (0..topo.width()).map(|_| rng.gen_range(1..500)).collect();
        let dy: Vec<i64> = (0..topo.height()).map(|_| rng.gen_range(1..500)).collect();
        let pattern = SquishPattern::new(topo, dx.clone(), dy.clone()).unwrap();
        let report = check_pattern(&pattern, &rules);
        prop_assert_eq!(cs.is_satisfied(&dx, &dy, &rules), report.is_clean());
    }

    /// Squish encode/decode is lossless through the geometry and squish
    /// crates together.
    #[test]
    fn squish_round_trip_via_decode(seed in any::<u64>()) {
        let topo = random_topology(seed, 8, 60);
        let dx: Vec<i64> = vec![7; topo.width()];
        let dy: Vec<i64> = vec![13; topo.height()];
        let pattern = SquishPattern::new(topo.clone(), dx, dy).unwrap();
        let layout = pattern.decode().unwrap();
        let reencoded = SquishPattern::encode(&layout);
        let roundtrip = reencoded.decode().unwrap();
        prop_assert_eq!(layout.normalized(), roundtrip.normalized());
    }
}

#[test]
fn solving_e_and_r_agree_on_feasibility() {
    // Across a batch of topologies, E and R must agree on which are
    // solvable (initialisation affects speed, not feasibility).
    let rules = DesignRules::standard();
    let solver = Solver::new(rules, SolverConfig::for_window(2048, 2048));
    let donor = {
        let mut layout = diffpattern::geometry::Layout::new(
            diffpattern::geometry::Rect::new(0, 0, 2048, 2048).unwrap(),
        );
        layout.push(diffpattern::geometry::Rect::new(100, 100, 900, 1900).unwrap());
        SquishPattern::encode(&layout)
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for seed in 0..10 {
        let topo = random_topology(seed, 10, 40);
        let r = solver.solve(&topo, Init::Random, &mut rng).is_ok();
        let e = solver
            .solve(&topo, Init::Existing(donor.dx(), donor.dy()), &mut rng)
            .is_ok();
        assert_eq!(r, e, "seed {seed}: R={r} E={e}");
    }
}
