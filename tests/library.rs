//! Full-stack integration tests for the durable pattern library: a
//! trained model served by [`PatternService`], drained through
//! [`LibrarySink`] into `dp_library` stores on real disk.
//!
//! The store-level durability contract (torn tails, checkpoint folding,
//! corruption detection) is pinned by `crates/library/tests/recovery.rs`
//! with synthetic streams; this suite pins the *system-level* claims
//! with real generated patterns:
//!
//! 1. a build interrupted at a checkpoint and resumed via
//!    `RequestSpec::first_index` converges on content **identical** to
//!    an uninterrupted build — same records, same accounting, same
//!    diversity bits, same `results.md`;
//! 2. shard builds over disjoint index sub-ranges merge into exactly
//!    the single-build library;
//! 3. the store's O(1)-per-pattern incremental entropy equals the
//!    one-shot [`PatternLibrary`] computation bit for bit (paper
//!    Definition 1, the `table1` harness's number).

use diffpattern::datagen::PatternLibrary;
use diffpattern::library::{merge_libraries, Library, LibraryConfig, LibraryWriter};
use diffpattern::{
    LibrarySink, PatternService, Pipeline, PipelineConfig, RequestSpec, TrainedModel,
};
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

const METHOD: &str = "diffpattern";
const RULESET: &str = "tiny";

/// Self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("dplib-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One trained tiny model plus the pipeline-derived base spec.
fn trained(seed: u64, iters: usize) -> (Arc<TrainedModel>, RequestSpec) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
    let _ = pipeline.train(iters, &mut rng).unwrap();
    let model = Arc::new(pipeline.trained_model().unwrap());
    let spec = pipeline.request_spec(0);
    (model, spec)
}

/// Fixed timestamp so interrupted/resumed and one-shot builds can be
/// compared down to the `results.md` bytes.
fn config() -> LibraryConfig {
    LibraryConfig {
        timestamp_override: Some("2026-08-08 - 00:00:00".to_string()),
        ..LibraryConfig::default()
    }
}

/// Drains `spec` (count/first_index already set) into the bucket.
fn drain(service: &PatternService, writer: &mut LibraryWriter, spec: &RequestSpec) {
    let cursor = writer.open_bucket(METHOD, RULESET, 0).unwrap();
    assert_eq!(cursor, spec.first_index as u64, "resume cursor mismatch");
    let handle = service.submit(spec).unwrap();
    LibrarySink::new(writer, METHOD, RULESET)
        .drain(handle)
        .unwrap();
}

/// Content identity: record-level hash, full accounting, diversity bits.
fn assert_same_content(a: &Library, b: &Library) {
    assert_eq!(a.content_hash(), b.content_hash());
    assert_eq!(a.len(), b.len());
    let sa = a.stats(METHOD, RULESET).unwrap();
    let sb = b.stats(METHOD, RULESET).unwrap();
    assert_eq!(sa, sb);
    assert_eq!(sa.diversity.to_bits(), sb.diversity.to_bits());
}

#[test]
fn interrupted_resumed_service_build_matches_one_shot() {
    let (model, base) = trained(82, 4);
    let service = PatternService::builder(Arc::clone(&model))
        .threads(2)
        .build()
        .unwrap();
    let tmp = TempDir::new("resume");
    let total = 12usize;
    let cut = 5usize;

    // Reference: one uninterrupted build.
    let mut writer = LibraryWriter::open(tmp.path("oneshot"), config()).unwrap();
    drain(
        &service,
        &mut writer,
        &RequestSpec {
            count: total,
            ..base.clone()
        }
        .seed(23),
    );
    let oneshot = writer.finish().unwrap();

    // Interrupted build: first `cut` items, a durable checkpoint, then
    // the writer is dropped cold (anything after the checkpoint would be
    // recovered from the records themselves; here the drop IS the kill).
    let mut writer = LibraryWriter::open(tmp.path("resumed"), config()).unwrap();
    drain(
        &service,
        &mut writer,
        &RequestSpec {
            count: cut,
            ..base.clone()
        }
        .seed(23),
    );
    writer.checkpoint().unwrap();
    drop(writer);

    // Resume: reopen, ask the bucket where to restart, generate the
    // remaining sub-range via `first_index`.
    let mut writer = LibraryWriter::open(tmp.path("resumed"), config()).unwrap();
    let cursor = writer.open_bucket(METHOD, RULESET, 0).unwrap() as usize;
    assert_eq!(cursor, cut, "checkpoint must preserve the cursor");
    drain(
        &service,
        &mut writer,
        &RequestSpec {
            count: total - cursor,
            ..base.clone()
        }
        .seed(23)
        .first_index(cursor),
    );
    let resumed = writer.finish().unwrap();

    assert_same_content(&oneshot, &resumed);
    // Down to the rendered results matrix (timestamps pinned).
    let oneshot_md = std::fs::read_to_string(tmp.path("oneshot").join("results.md")).unwrap();
    let resumed_md = std::fs::read_to_string(tmp.path("resumed").join("results.md")).unwrap();
    assert_eq!(oneshot_md, resumed_md);
}

#[test]
fn first_index_shard_builds_merge_into_the_single_build() {
    let (model, base) = trained(83, 4);
    let service = PatternService::builder(Arc::clone(&model))
        .threads(2)
        .build()
        .unwrap();
    let tmp = TempDir::new("merge");
    let total = 10usize;
    let split = 4usize;

    let mut writer = LibraryWriter::open(tmp.path("single"), config()).unwrap();
    drain(
        &service,
        &mut writer,
        &RequestSpec {
            count: total,
            ..base.clone()
        }
        .seed(29),
    );
    let single = writer.finish().unwrap();

    // Two shards over disjoint sub-ranges of the same seed space. The
    // second shard's bucket base is its first_index.
    let mut writer = LibraryWriter::open(tmp.path("shard0"), config()).unwrap();
    drain(
        &service,
        &mut writer,
        &RequestSpec {
            count: split,
            ..base.clone()
        }
        .seed(29),
    );
    writer.finish().unwrap();
    let mut writer = LibraryWriter::open(tmp.path("shard1"), config()).unwrap();
    let cursor = writer.open_bucket(METHOD, RULESET, split as u64).unwrap();
    assert_eq!(cursor, split as u64);
    let handle = service
        .submit(
            &RequestSpec {
                count: total - split,
                ..base.clone()
            }
            .seed(29)
            .first_index(split),
        )
        .unwrap();
    LibrarySink::new(&mut writer, METHOD, RULESET)
        .drain(handle)
        .unwrap();
    writer.finish().unwrap();

    let shards = [
        Library::open(tmp.path("shard1")).unwrap(),
        Library::open(tmp.path("shard0")).unwrap(),
    ];
    let merged = merge_libraries(tmp.path("merged"), &shards, config()).unwrap();
    assert_same_content(&single, &merged);
}

#[test]
fn incremental_store_entropy_matches_one_shot_library_bit_for_bit() {
    let (model, base) = trained(84, 4);
    let service = PatternService::builder(Arc::clone(&model))
        .threads(1)
        .build()
        .unwrap();
    let tmp = TempDir::new("entropy");

    let mut writer = LibraryWriter::open(tmp.path("store"), config()).unwrap();
    drain(
        &service,
        &mut writer,
        &RequestSpec {
            count: 16,
            ..base.clone()
        }
        .seed(37),
    );
    let store = writer.finish().unwrap();

    // One-shot: rebuild the paper's PatternLibrary from the stored
    // records read back off disk and compare Definition 1 exactly.
    let mut oneshot = PatternLibrary::new();
    let mut scratch = Vec::new();
    for record_ref in store.records(METHOD, RULESET).unwrap() {
        let record = store.read(record_ref, &mut scratch).unwrap();
        oneshot.add_topology(record.pattern.topology());
    }
    let stats = store.stats(METHOD, RULESET).unwrap();
    assert_eq!(oneshot.len() as u64, stats.accepted);
    assert_eq!(
        oneshot.diversity().to_bits(),
        stats.diversity.to_bits(),
        "incremental entropy must equal the one-shot computation exactly"
    );
    assert_eq!(
        store
            .histogram(METHOD, RULESET)
            .unwrap()
            .diversity()
            .to_bits(),
        oneshot.diversity().to_bits()
    );
}
