//! Cross-cutting invariants that span crate boundaries: symmetry of the
//! DRC engine under transposition, conservation laws of the polygon
//! tracer, and determinism of the whole pipeline under a fixed seed.

use diffpattern::drc::{check_pattern, DesignRules};
use diffpattern::geometry::{polygons_of_grid, BitGrid};
use diffpattern::squish::SquishPattern;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn random_grid(seed: u64, side: usize, fill_pct: u32) -> BitGrid {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut g = BitGrid::new(side, side).unwrap();
    for r in 0..side {
        for c in 0..side {
            if rng.gen_range(0u32..100) < fill_pct {
                g.set(c, r, true);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DRC is symmetric under transposition: checking the transposed
    /// topology with swapped delta vectors finds the same number of
    /// violations with X and Y axes exchanged.
    #[test]
    fn drc_transpose_symmetry(seed in any::<u64>(), fill in 20u32..70) {
        let g = random_grid(seed, 8, fill);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 1);
        let dx: Vec<i64> = (0..8).map(|_| rng.gen_range(1..500)).collect();
        let dy: Vec<i64> = (0..8).map(|_| rng.gen_range(1..500)).collect();
        let rules = DesignRules::standard();

        let p = SquishPattern::new(g.clone(), dx.clone(), dy.clone()).unwrap();
        let pt = SquishPattern::new(g.transposed(), dy, dx).unwrap();
        let a = check_pattern(&p, &rules);
        let b = check_pattern(&pt, &rules);
        prop_assert_eq!(a.violations().len(), b.violations().len());
        prop_assert_eq!(a.count_of("space"), b.count_of("space"));
        prop_assert_eq!(a.count_of("width"), b.count_of("width"));
        prop_assert_eq!(a.count_of("area"), b.count_of("area"));
        prop_assert_eq!(a.is_clean(), b.is_clean());
    }

    /// The polygon tracer conserves area: outer loops minus holes equals
    /// the number of filled cells, for arbitrary (even bow-tie-laden)
    /// grids.
    #[test]
    fn polygon_tracer_conserves_area(seed in any::<u64>(), fill in 10u32..90) {
        let g = random_grid(seed, 10, fill);
        let total: i128 = polygons_of_grid(&g)
            .iter()
            .map(|p| if p.is_ccw() { p.area() } else { -p.area() })
            .sum();
        prop_assert_eq!(total, g.count_ones() as i128);
    }

    /// Squish-core computation is idempotent and commutes with transpose.
    #[test]
    fn squish_core_idempotent_and_transpose_commutes(seed in any::<u64>(), fill in 10u32..90) {
        use diffpattern::squish::squish_to_core;
        let g = random_grid(seed, 9, fill);
        let core = squish_to_core(&g);
        prop_assert_eq!(squish_to_core(&core), core.clone());
        let core_t = squish_to_core(&g.transposed());
        prop_assert_eq!(core_t, core.transposed());
    }
}

#[test]
fn pipeline_is_deterministic_under_fixed_seed() {
    use diffpattern::{Pipeline, PipelineConfig};
    let run = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut p = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
        let _ = p.train(3, &mut rng).unwrap();
        let model = p.trained_model().unwrap();
        let session = p.session_builder(&model).seed(77).build().unwrap();
        session.generate(2).unwrap().items
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.pattern.topology(), y.pattern.topology());
        assert_eq!(x.pattern.dx(), y.pattern.dx());
        assert_eq!(x.pattern.dy(), y.pattern.dy());
        assert_eq!(x.provenance, y.provenance);
    }
}
