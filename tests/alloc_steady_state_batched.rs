//! The micro-batched counterpart of `alloc_steady_state.rs`: once a
//! worker's [`BatchScratch`] is warm, advancing B lock-step denoising
//! chains performs **no per-step heap allocations** either — the stacked
//! network evaluation draws from the workspace pool and the concatenated
//! probability buffer reuses its capacity.
//!
//! Method: identical to the single-chain test — compare the allocation
//! count of a 10-step batched chain against a 60-step one at the same lane
//! count; any per-step allocation would separate them by at least
//! 50 events. The small constant that remains is the per-*chain* cost
//! (one state tensor per lane plus the returned vector).
//!
//! The allocator needs `unsafe` to delegate to the system allocator; the
//! workspace itself is `#![forbid(unsafe_code)]`.

#![allow(unsafe_code)]

use diffpattern::diffusion::{BatchScratch, NeuralDenoiser, NoiseSchedule, TrainedModel};
use diffpattern::nn::{with_inner_gemm_parallelism, UNet, UNetConfig};
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn counted<R>(f: impl FnOnce() -> R) -> (usize, R) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::SeqCst), out)
}

fn model(steps: usize) -> TrainedModel {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let config = UNetConfig {
        in_channels: 4,
        out_channels: 8,
        base_channels: 8,
        channel_mults: vec![1, 2],
        num_res_blocks: 1,
        attn_resolutions: vec![1],
        time_dim: 16,
        groups: 4,
        dropout: 0.0,
    };
    // Untrained weights: allocation behaviour is architecture-bound.
    let denoiser = NeuralDenoiser::new(UNet::new(&config, &mut rng));
    let schedule = NoiseSchedule::linear(steps, 0.01, 0.5).unwrap();
    TrainedModel::new(denoiser, schedule, 8).unwrap()
}

/// This file holds exactly one test so no sibling test thread can pollute
/// the global allocation counter.
#[test]
fn steady_state_batched_sampling_allocates_nothing_per_denoising_step() {
    const LANES: u64 = 3;
    let short = model(10);
    let long = model(60);
    let sampler_short = short.sampler();
    let sampler_long = long.sampler();
    let mut scratch = BatchScratch::new();
    let rngs = |base: u64| -> Vec<rand::rngs::StdRng> {
        (0..LANES)
            .map(|i| rand::rngs::StdRng::seed_from_u64(base + i))
            .collect()
    };

    // Inner GEMM threads would allocate on spawn; sessions disable them in
    // workers, so the measurement mirrors the worker configuration.
    with_inner_gemm_parallelism(false, || {
        // Warm-up: size the workspace pool and the concatenated p1 buffer.
        for round in 0..2u64 {
            let _ = sampler_short.sample_batch_with(&short, 4, 8, &mut rngs(round), &mut scratch);
            let _ = sampler_long.sample_batch_with(&long, 4, 8, &mut rngs(round), &mut scratch);
        }

        let mut r = rngs(10);
        let (short_allocs, _) =
            counted(|| sampler_short.sample_batch_with(&short, 4, 8, &mut r, &mut scratch));
        let mut r = rngs(11);
        let (long_allocs, _) =
            counted(|| sampler_long.sample_batch_with(&long, 4, 8, &mut r, &mut scratch));

        // 50 extra lock-step denoising rounds, zero extra allocations.
        assert_eq!(
            long_allocs, short_allocs,
            "per-step allocations detected: 10-step batch allocated {short_allocs}, \
             60-step batch allocated {long_allocs}"
        );
        // The constant is per chain, not per step: a few allocations per
        // lane (state bits + tensor) plus the returned vector.
        assert!(
            short_allocs <= 4 * LANES as usize + 4,
            "per-batch allocation overhead unexpectedly large: {short_allocs}"
        );
    });
}
