//! Protocol conformance and fault-injection tests for `dpserve`, the
//! network front-end over [`PatternService`].
//!
//! The suite pins the three serving contracts end to end over real
//! sockets:
//!
//! 1. **transparency** — a spec submitted over the wire produces items
//!    byte-identical to the same spec through the in-process API;
//! 2. **robustness** — malformed JSON, unknown fields, invalid specs,
//!    oversized bodies and raw garbage get structured error responses
//!    with the right status code, and never wedge the server;
//! 3. **lifecycle** — client disconnects cancel the request's remaining
//!    lanes (visible in `/metrics`), deadlines convert undelivered
//!    items to accounted shortfall, and admission bounds answer 429.

use diffpattern::drc::DesignRules;
use diffpattern::geometry::BitGrid;
use diffpattern::legalize::{SolveStats, SolverConfig};
use diffpattern::library::{Library, LibraryConfig};
use diffpattern::squish::{DeepSquishTensor, SquishPattern};
use diffpattern::{
    Conditioning, FrozenRegion, Generated, Motif, MotifGuidance, PatternService, Pipeline,
    PipelineConfig, Precision, Provenance, RequestSpec, TrainedModel,
};
use dp_serve::http::Conn;
use dp_serve::json::{self, Json};
use dp_serve::{serve, Client, ClientError, ServeConfig, ServeLibrary, ServerHandle};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One trained tiny model plus the pipeline-derived base spec.
fn trained(seed: u64, iters: usize) -> (Arc<TrainedModel>, RequestSpec) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
    let _ = pipeline.train(iters, &mut rng).unwrap();
    let model = Arc::new(pipeline.trained_model().unwrap());
    let spec = pipeline.request_spec(0);
    (model, spec)
}

/// Starts a server over a fresh service; returns the handle plus a
/// clone of the service for in-process comparison and live stats.
fn start(
    model: &Arc<TrainedModel>,
    threads: usize,
    micro_batch: usize,
    max_queued: usize,
    config: ServeConfig,
) -> (ServerHandle, PatternService) {
    let service = PatternService::builder(Arc::clone(model))
        .threads(threads)
        .micro_batch(micro_batch)
        .max_queued_requests(max_queued)
        .build()
        .unwrap();
    let server = serve(service.clone(), "127.0.0.1:0", config).unwrap();
    (server, service)
}

fn client(server: &ServerHandle) -> Client {
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    client
}

// ---------------------------------------------------------------------
// Transparency
// ---------------------------------------------------------------------

#[test]
fn wire_output_is_byte_identical_to_in_process() {
    let (model, base) = trained(70, 4);
    let (server, service) = start(&model, 2, 4, 0, ServeConfig::default());
    let spec = RequestSpec {
        count: 4,
        ..base.clone()
    }
    .seed(31);

    let local = service.generate(&spec).unwrap();
    let mut wire = client(&server).generate(&spec).unwrap();
    assert_eq!(wire.requested, 4);
    assert!(wire.error.is_none());
    assert!(!wire.deadline_expired);

    // Wire items arrive in completion order; the in-process wait() sorts
    // by index. Align and compare — `Generated` equality is exact
    // (topology bits, Δ vectors, full provenance).
    wire.items.sort_by_key(|g| g.provenance.index);
    assert_eq!(local.items, wire.items);
    assert_eq!(local.report, wire.report);

    // And the wire is repeatable: a second run of the same spec over a
    // fresh connection is identical again.
    let mut again = client(&server).generate(&spec).unwrap();
    again.items.sort_by_key(|g| g.provenance.index);
    assert_eq!(wire.items, again.items);
    assert_eq!(wire.report, again.report);
}

#[test]
fn conditioned_wire_output_is_byte_identical_to_in_process() {
    let (model, base) = trained(70, 4);
    let (server, service) = start(&model, 2, 4, 0, ServeConfig::default());

    // Freeze the first quarter of the topology tensor to zeros and steer
    // the rest away from isolated cells — both constraint families ride
    // the wire together.
    let entries = model.channels() * model.side() * model.side();
    let mask: Vec<bool> = (0..entries).map(|i| i < entries / 4).collect();
    let bits = vec![false; entries];
    let cond = Conditioning::none()
        .with_frozen(FrozenRegion::new(mask.clone(), bits.clone()).unwrap())
        .with_avoid(MotifGuidance::new(Motif::IsolatedCell, 2.5).unwrap());
    let spec = RequestSpec {
        count: 3,
        ..base.clone()
    }
    .seed(41)
    .conditioning(cond);

    let local = service.generate(&spec).unwrap();
    let mut wire = client(&server).generate(&spec).unwrap();
    assert!(wire.error.is_none());
    wire.items.sort_by_key(|g| g.provenance.index);
    assert_eq!(local.items, wire.items);
    assert_eq!(local.report, wire.report);

    // Every delivered pattern honours the frozen region exactly — the
    // constraint was live across the socket, not dropped in transit.
    for item in &wire.items {
        let tensor = DeepSquishTensor::fold(item.pattern.topology(), model.channels()).unwrap();
        for (i, (&frozen, &want)) in mask.iter().zip(&bits).enumerate() {
            if frozen {
                assert_eq!(tensor.bits()[i], want, "frozen entry {i} diverged");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Conformance: every bad input gets a structured error, nothing wedges
// ---------------------------------------------------------------------

#[test]
fn invalid_bodies_get_structured_errors_and_connection_survives() {
    let (model, _) = trained(71, 2);
    let (server, _) = start(&model, 1, 4, 0, ServeConfig::default());
    let mut c = client(&server);

    // (body, expected status, expected code) — all on ONE connection;
    // these are well-formed HTTP, so the server keeps the session open.
    let cases: &[(&str, u16, &str)] = &[
        ("{\"count\": 1, \"cuont\": 2}", 400, "unknown_field"),
        ("{\"count\": 1", 400, "malformed_json"),
        ("not json at all", 400, "malformed_json"),
        ("{\"count\": 0}", 422, "invalid_spec"),
        ("{\"seed\": 9}", 400, "bad_request"),
        ("{\"count\": -3}", 400, "bad_request"),
        (
            "{\"count\": 1, \"rules\": {\"space_min\": -60}}",
            422,
            "invalid_spec",
        ),
        (
            "{\"count\": 1, \"solver\": {\"margin\": \"wide\"}}",
            400,
            "bad_request",
        ),
        (
            "{\"count\": 1, \"donors\": [{\"topology\": [\"01\", \"0\"], \
             \"dx\": [1, 1], \"dy\": [1, 1]}]}",
            422,
            "invalid_spec",
        ),
        // A typo inside the conditioning object is caught at parse time.
        (
            "{\"count\": 1, \"conditioning\": {\"freze_len\": 4}}",
            400,
            "unknown_field",
        ),
        // A well-formed frozen region whose mask does not span the
        // model's tensor is rejected at submit (shape validation).
        (
            "{\"count\": 1, \"conditioning\": {\"freeze_len\": 8, \
             \"freeze_mask\": \"Dw==\", \"freeze_bits\": \"Cw==\"}}",
            422,
            "invalid_spec",
        ),
    ];
    for (body, status, code) in cases {
        let (got_status, got_body) = c.post_raw("/v1/generate", body.as_bytes()).unwrap();
        assert_eq!(got_status, *status, "{body}");
        let parsed = json::parse(std::str::from_utf8(&got_body).unwrap()).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(
            parsed.get("code").and_then(Json::as_str),
            Some(*code),
            "{body}"
        );
    }

    // Routing errors are structured too.
    let (status, _) = c.get_raw("/no/such/endpoint").unwrap();
    assert_eq!(status, 404);
    let (status, _) = c.get_raw("/v1/generate").unwrap();
    assert_eq!(status, 405);

    // After all that abuse the same connection still serves real work.
    let (status, _) = c.get_raw("/healthz").unwrap();
    assert_eq!(status, 200);
}

#[test]
fn raw_garbage_and_oversized_bodies_close_cleanly() {
    let (model, _) = trained(72, 2);
    let config = ServeConfig {
        max_body_bytes: 256,
        ..ServeConfig::default()
    };
    let (server, _) = start(&model, 1, 4, 0, config);

    // Unparseable HTTP: 400 and the connection closes.
    let mut c = client(&server);
    c.send_raw(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let (status, _) = c.read_response().unwrap();
    assert_eq!(status, 400);
    assert!(c.get_raw("/healthz").is_err(), "connection must be closed");

    // A body over the cap: 413 without reading the body, then close.
    let mut c = client(&server);
    let huge = format!("{{\"count\": 1, \"seed\": {}}}", "9".repeat(300));
    let (status, body) = c.post_raw("/v1/generate", huge.as_bytes()).unwrap();
    assert_eq!(status, 413);
    let parsed = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        parsed.get("code").and_then(Json::as_str),
        Some("body_too_large")
    );

    // The server survives: a fresh connection works.
    let (status, _) = client(&server).get_raw("/healthz").unwrap();
    assert_eq!(status, 200);
}

#[test]
fn pipelined_requests_on_one_connection_are_answered_in_order() {
    let (model, base) = trained(73, 3);
    let (server, _) = start(&model, 1, 4, 0, ServeConfig::default());
    let mut c = client(&server);

    // Three requests written back to back before reading anything:
    // two trivial GETs and a real generation.
    let spec_body = dp_serve::proto::spec_to_json(&RequestSpec {
        count: 1,
        ..base.clone()
    })
    .to_string();
    let mut wire = Vec::new();
    wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
    wire.extend_from_slice(b"GET /metrics HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
    wire.extend_from_slice(
        format!(
            "POST /v1/generate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            spec_body.len(),
            spec_body
        )
        .as_bytes(),
    );
    c.send_raw(&wire).unwrap();

    let (status, body) = c.read_response().unwrap();
    assert_eq!(status, 200);
    assert!(body.starts_with(b"{\"status\""));
    let (status, body) = c.read_response().unwrap();
    assert_eq!(status, 200);
    assert!(json::parse(std::str::from_utf8(&body).unwrap()).is_ok());
    // The third response is the NDJSON stream; its final record is the
    // report.
    let (status, body) = c.read_response().unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    let last = text.lines().last().unwrap();
    let report = json::parse(last).unwrap();
    assert_eq!(report.get("type").and_then(Json::as_str), Some("report"));
}

// ---------------------------------------------------------------------
// Lifecycle: disconnect cancellation, deadlines, backpressure
// ---------------------------------------------------------------------

/// Polls `/metrics` until `accept` returns true or the timeout expires;
/// returns the last snapshot either way.
fn wait_for_metrics(server: &ServerHandle, accept: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut c = client(server);
    loop {
        let snapshot = c.metrics().unwrap();
        if accept(&snapshot) || Instant::now() >= deadline {
            return snapshot;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn scheduler_field(snapshot: &Json, field: &str) -> i128 {
    snapshot
        .get("scheduler")
        .and_then(|s| s.get(field))
        .and_then(Json::as_int)
        .unwrap()
}

fn counter(snapshot: &Json, field: &str) -> i128 {
    snapshot.get(field).and_then(Json::as_int).unwrap()
}

#[test]
fn client_disconnect_mid_stream_cancels_remaining_lanes() {
    let (model, base) = trained(74, 3);
    let (server, service) = start(&model, 1, 2, 0, ServeConfig::default());

    // A request big enough that it is still running when we hang up.
    let spec = RequestSpec {
        count: 48,
        ..base.clone()
    }
    .seed(5);
    let body = dp_serve::proto::spec_to_json(&spec).to_string();
    {
        let socket = TcpStream::connect(server.addr()).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        let mut conn = Conn::new(socket);
        conn.write_request("POST", "/v1/generate", body.as_bytes())
            .unwrap();
        let (status, _) = conn.read_response_head().unwrap();
        assert_eq!(status, 200);
        // Read one item record to prove the stream was live, then
        // vanish (socket drops here).
        let first = conn.next_chunk().unwrap().unwrap();
        assert!(std::str::from_utf8(&first).unwrap().contains("\"item\""));
    }

    // The handler notices within a poll tick, drops the handle, and the
    // engine abandons the queued lanes: scheduler counters drain to
    // zero long before 47 more items could have been generated.
    let snapshot = wait_for_metrics(&server, |m| {
        counter(m, "disconnect_cancelled") >= 1
            && scheduler_field(m, "queued_lanes") == 0
            && scheduler_field(m, "lanes_in_flight") == 0
    });
    assert!(
        counter(&snapshot, "disconnect_cancelled") >= 1,
        "{snapshot:?}"
    );
    assert_eq!(scheduler_field(&snapshot, "queued_lanes"), 0);
    assert_eq!(scheduler_field(&snapshot, "lanes_in_flight"), 0);
    // Far fewer items were generated than requested.
    assert!(counter(&snapshot, "items_streamed") < 24, "{snapshot:?}");
    // The engine is still healthy: the same service serves new work.
    let generation = service
        .generate(&RequestSpec {
            count: 1,
            ..base.clone()
        })
        .unwrap();
    assert_eq!(
        generation.items.len() + generation.report.shortfall,
        1,
        "post-cancel request must close its accounting"
    );
}

#[test]
fn slow_reader_does_not_stall_other_connections() {
    let (model, base) = trained(75, 3);
    let (server, _) = start(&model, 2, 2, 0, ServeConfig::default());

    // Connection A submits a big request and then never reads.
    let slow_spec = RequestSpec {
        count: 32,
        ..base.clone()
    }
    .seed(9);
    let body = dp_serve::proto::spec_to_json(&slow_spec).to_string();
    let slow_socket = TcpStream::connect(server.addr()).unwrap();
    let mut slow_conn = Conn::new(slow_socket);
    slow_conn
        .write_request("POST", "/v1/generate", body.as_bytes())
        .unwrap();
    // (not reading anything from slow_conn)

    // Connection B gets served anyway, while A is mid-stream.
    let outcome = client(&server)
        .generate(&RequestSpec {
            count: 2,
            ..base.clone()
        })
        .unwrap();
    assert_eq!(outcome.items.len() + outcome.report.shortfall, 2);
    drop(slow_conn);
}

#[test]
fn expired_deadline_converts_undelivered_items_to_shortfall() {
    let (model, base) = trained(76, 3);
    let (server, service) = start(&model, 1, 2, 0, ServeConfig::default());

    // A deadline that is already over at admission: every lane becomes
    // shortfall, no item is ever generated, and the stream still closes
    // with a complete report.
    let spec = RequestSpec {
        count: 6,
        ..base.clone()
    }
    .deadline(Duration::ZERO);
    let outcome = client(&server).generate(&spec).unwrap();
    assert_eq!(outcome.items.len(), 0);
    assert_eq!(outcome.report.shortfall, 6);
    assert!(outcome.deadline_expired);

    // A deadline that expires mid-generation: whatever was delivered is
    // real, everything else is accounted shortfall — the accounting
    // closes exactly, never hangs.
    let spec = RequestSpec {
        count: 24,
        ..base.clone()
    }
    .seed(3)
    .deadline(Duration::from_millis(60));
    let outcome = client(&server).generate(&spec).unwrap();
    assert_eq!(
        outcome.items.len() + outcome.report.shortfall,
        24,
        "partial report must close its accounting"
    );

    // The in-process path agrees on the semantics (same engine sweep).
    let local = service.generate(&spec).unwrap();
    assert_eq!(local.items.len() + local.report.shortfall, 24);

    // Delivered items obey the bit-exactness contract: every item that
    // did complete matches the no-deadline run of the same spec.
    let full = service
        .generate(&RequestSpec {
            deadline: None,
            ..spec.clone()
        })
        .unwrap();
    for item in outcome.items.iter().chain(&local.items) {
        let reference = full
            .items
            .iter()
            .find(|g| g.provenance.index == item.provenance.index)
            .expect("delivered item must exist in the full run");
        assert_eq!(reference, item);
    }
    let snapshot = wait_for_metrics(&server, |m| counter(m, "deadline_expired") >= 1);
    assert!(counter(&snapshot, "deadline_expired") >= 1);
}

#[test]
fn full_admission_queue_answers_429_and_recovers() {
    let (model, base) = trained(77, 3);
    // One worker claiming one lane at a time keeps the first request in
    // the admission queue for its whole lifetime; bound the queue at 1.
    let (server, _) = start(&model, 1, 1, 1, ServeConfig::default());

    // Occupy the queue with a long request (admitted = 200 streamed).
    let long_spec = RequestSpec {
        count: 32,
        ..base.clone()
    }
    .seed(11);
    let body = dp_serve::proto::spec_to_json(&long_spec).to_string();
    let socket = TcpStream::connect(server.addr()).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut occupant = Conn::new(socket);
    occupant
        .write_request("POST", "/v1/generate", body.as_bytes())
        .unwrap();
    let (status, _) = occupant.read_response_head().unwrap();
    assert_eq!(status, 200);

    // The next submission bounces with the structured 429.
    let err = client(&server)
        .generate(&RequestSpec {
            count: 1,
            ..base.clone()
        })
        .unwrap_err();
    match err {
        ClientError::Rejected {
            status,
            code,
            message,
        } => {
            assert_eq!(status, 429);
            assert_eq!(code, "queue_full");
            assert!(message.contains("retry"), "{message}");
        }
        other => panic!("expected a 429 rejection, got {other:?}"),
    }
    let snapshot = wait_for_metrics(&server, |m| counter(m, "rejected_queue_full") >= 1);
    assert!(counter(&snapshot, "rejected_queue_full") >= 1);

    // Cancel the occupant (disconnect) and the queue drains; the same
    // spec is now admitted.
    drop(occupant);
    let deadline = Instant::now() + Duration::from_secs(30);
    let outcome = loop {
        match client(&server).generate(&RequestSpec {
            count: 1,
            ..base.clone()
        }) {
            Ok(outcome) => break outcome,
            Err(ClientError::Rejected { status: 429, .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(other) => panic!("unexpected error while recovering: {other:?}"),
        }
    };
    assert_eq!(outcome.requested, 1);
}

#[test]
fn metrics_reflect_served_traffic() {
    let (model, base) = trained(78, 3);
    let (server, _) = start(&model, 1, 4, 0, ServeConfig::default());
    let mut c = client(&server);
    let outcome = c
        .generate(&RequestSpec {
            count: 2,
            ..base.clone()
        })
        .unwrap();
    let delivered = outcome.items.len() as i128;
    let snapshot = c.metrics().unwrap();
    assert!(counter(&snapshot, "connections_total") >= 1);
    assert!(counter(&snapshot, "requests_total") >= 2);
    assert_eq!(counter(&snapshot, "requests_completed"), 1);
    assert_eq!(counter(&snapshot, "items_streamed"), delivered);
    // Latency histograms recorded the stream.
    let stream_count = snapshot
        .get("latency")
        .and_then(|l| l.get("stream"))
        .and_then(|s| s.get("count"))
        .and_then(Json::as_int)
        .unwrap();
    assert_eq!(stream_count, 1);
    // No library sink attached → no library section.
    assert!(snapshot.get("library").is_none());
}

/// Self-cleaning scratch directory for the library-sink test.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("dpserve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn library_counter(snapshot: &Json, field: &str) -> i128 {
    snapshot
        .get("library")
        .expect("library section")
        .get(field)
        .and_then(Json::as_int)
        .unwrap()
}

#[test]
fn attached_library_ingests_streamed_items_and_surfaces_counters() {
    let (model, base) = trained(79, 3);
    let tmp = TempDir::new("library-sink");
    let library = Arc::new(ServeLibrary::open(&tmp.0, LibraryConfig::default()).unwrap());
    let config = ServeConfig {
        library: Some(Arc::clone(&library)),
        ..ServeConfig::default()
    };
    let (mut server, _) = start(&model, 1, 4, 0, config);

    // Before any traffic the section exists and reads zero.
    let snapshot = client(&server).metrics().unwrap();
    assert_eq!(library_counter(&snapshot, "accepted"), 0);
    assert_eq!(library_counter(&snapshot, "deduplicated"), 0);

    // One stream: every delivered item lands in the store (accepted or
    // deduplicated — nothing vanishes).
    let spec = RequestSpec {
        count: 6,
        ..base.clone()
    }
    .seed(17);
    let outcome = client(&server).generate(&spec).unwrap();
    let delivered = outcome.items.len() as i128;
    assert!(delivered > 0, "need at least one item for the test to bite");
    let snapshot = client(&server).metrics().unwrap();
    let accepted = library_counter(&snapshot, "accepted");
    let deduplicated = library_counter(&snapshot, "deduplicated");
    assert_eq!(accepted + deduplicated, delivered, "{snapshot:?}");
    assert!(accepted >= 1);
    assert!(library_counter(&snapshot, "bytes_written") > 0);

    // Replaying the identical spec streams identical patterns: the
    // dedup layer absorbs all of them, accepted stays put.
    let again = client(&server).generate(&spec).unwrap();
    assert_eq!(again.items.len() as i128, delivered);
    let snapshot = client(&server).metrics().unwrap();
    assert_eq!(library_counter(&snapshot, "accepted"), accepted);
    assert_eq!(
        library_counter(&snapshot, "deduplicated"),
        deduplicated + delivered
    );

    // A clean stop checkpoints the store; reopening read-only sees every
    // accepted pattern under the synthesized ruleset bucket.
    server.stop();
    assert!(tmp.0.join("checkpoint.dpl").is_file());
    let store = Library::open(&tmp.0).unwrap();
    let buckets: Vec<(&str, &str)> = store.buckets().collect();
    assert_eq!(buckets.len(), 1, "{buckets:?}");
    assert_eq!(buckets[0].0, "diffpattern");
    let stats = store.stats(buckets[0].0, buckets[0].1).unwrap();
    assert_eq!(stats.accepted as i128, accepted);
    assert_eq!(stats.duplicates as i128, deduplicated + delivered);
}

// ---------------------------------------------------------------------
// Codec round-trip properties (no sockets — pure wire-format checks)
// ---------------------------------------------------------------------

/// A random but structurally valid squish pattern for donor lists.
fn random_donor(seed: u64) -> SquishPattern {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (w, h) = (rng.gen_range(1usize..6), rng.gen_range(1usize..6));
    let cells: Vec<bool> = (0..w * h).map(|_| rng.gen()).collect();
    let dx: Vec<i64> = (0..w).map(|_| rng.gen_range(1i64..2_000)).collect();
    let dy: Vec<i64> = (0..h).map(|_| rng.gen_range(1i64..2_000)).collect();
    SquishPattern::new(BitGrid::from_cells(w, h, cells).unwrap(), dx, dy).unwrap()
}

/// A random conditioning of every composable shape: none, frozen-only,
/// guidance-only, frozen + guidance.
fn random_conditioning(seed: u64, frozen_len: usize, kind: u8) -> Conditioning {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD17A_C0DE);
    let mut cond = Conditioning::none();
    if kind & 1 != 0 {
        let mask: Vec<bool> = (0..frozen_len).map(|_| rng.gen()).collect();
        let bits: Vec<bool> = (0..frozen_len).map(|_| rng.gen()).collect();
        cond = cond.with_frozen(FrozenRegion::new(mask, bits).unwrap());
    }
    if kind & 2 != 0 {
        let weight = f64::from(rng.gen_range(1u32..1_000_000)) / 1_000.0;
        cond = cond.with_avoid(MotifGuidance::new(Motif::IsolatedCell, weight).unwrap());
    }
    cond
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any structurally valid RequestSpec survives
    /// serialize → print → parse → deserialize without changing a single
    /// generation-relevant bit (deadlines travel as whole milliseconds,
    /// so they are sampled as such).
    #[test]
    fn request_spec_round_trips_through_the_wire_codec(
        count in 1usize..100_000,
        first_index in 0usize..1_000_000,
        seed in any::<u64>(),
        priority in any::<i32>(),
        stride in 1usize..64,
        attempts in 1usize..64,
        repair in any::<bool>(),
        space in 1i64..500,
        width in 1i64..500,
        area_min in 0i64..10_000,
        area_span in 1i64..2_000_000,
        exempt in any::<bool>(),
        window_w in 100i64..1_000_000,
        window_h in 100i64..1_000_000,
        iterations in 0usize..100_000,
        restarts in 0usize..64,
        margin in 0.0f64..8.0,
        deadline_ms in any::<u64>(),
        has_deadline in any::<bool>(),
        donor_seed in any::<u64>(),
        donor_n in 0usize..3,
        bf16 in any::<bool>(),
        frozen_len in 1usize..64,
        frozen_kind in 0u8..4,
    ) {
        let rules = DesignRules::builder()
            .space_min(space)
            .width_min(width)
            .area_range(area_min as i128, (area_min + area_span) as i128)
            .exempt_border(exempt)
            .build()
            .unwrap();
        let mut solver = SolverConfig::for_window(window_w, window_h);
        solver.max_iterations = iterations;
        solver.max_restarts = restarts;
        solver.margin = margin;
        let donors: Vec<SquishPattern> = (0..donor_n)
            .map(|i| random_donor(donor_seed.wrapping_add(i as u64)))
            .collect();
        let spec = RequestSpec {
            count,
            first_index,
            seed,
            priority,
            rules,
            solver,
            sample_stride: stride,
            max_attempts: attempts,
            repair_bowties: repair,
            donors: Arc::from(donors.into_boxed_slice()),
            conditioning: Arc::new(random_conditioning(seed, frozen_len, frozen_kind)),
            deadline: has_deadline.then(|| Duration::from_millis(deadline_ms)),
            precision: if bf16 { Precision::Bf16 } else { Precision::Exact },
        };

        let wire = dp_serve::proto::spec_to_json(&spec).to_string();
        let back = dp_serve::proto::spec_from_json(&json::parse(&wire).unwrap()).unwrap();

        prop_assert_eq!(spec.count, back.count);
        prop_assert_eq!(spec.first_index, back.first_index);
        prop_assert_eq!(spec.seed, back.seed);
        prop_assert_eq!(spec.priority, back.priority);
        prop_assert_eq!(spec.rules, back.rules);
        prop_assert_eq!(spec.solver.target_width, back.solver.target_width);
        prop_assert_eq!(spec.solver.target_height, back.solver.target_height);
        prop_assert_eq!(spec.solver.max_iterations, back.solver.max_iterations);
        prop_assert_eq!(spec.solver.max_restarts, back.solver.max_restarts);
        prop_assert_eq!(spec.solver.margin.to_bits(), back.solver.margin.to_bits());
        prop_assert_eq!(spec.sample_stride, back.sample_stride);
        prop_assert_eq!(spec.max_attempts, back.max_attempts);
        prop_assert_eq!(spec.repair_bowties, back.repair_bowties);
        prop_assert_eq!(spec.donors.as_ref(), back.donors.as_ref());
        prop_assert_eq!(spec.deadline, back.deadline);
        prop_assert_eq!(spec.precision, back.precision);
        // Conditioning survives exactly: frozen mask/bits bit-for-bit,
        // motif preset and guidance weight to the last ulp (plan_hash
        // covers all of it canonically).
        prop_assert_eq!(spec.conditioning.plan_hash(), back.conditioning.plan_hash());
        prop_assert_eq!(
            spec.conditioning.frozen().map(|f| (f.mask().to_vec(), f.bits().to_vec())),
            back.conditioning.frozen().map(|f| (f.mask().to_vec(), f.bits().to_vec()))
        );
        prop_assert_eq!(
            spec.conditioning.avoid().map(|g| (g.motif(), g.weight().to_bits())),
            back.conditioning.avoid().map(|g| (g.motif(), g.weight().to_bits()))
        );
    }

    /// Item records (pattern + full provenance) survive the NDJSON
    /// round-trip exactly — the property behind the byte-equality test.
    #[test]
    fn item_records_round_trip_exactly(
        pattern_seed in any::<u64>(),
        index in any::<u64>(),
        item_seed in any::<u64>(),
        attempts in 0usize..100,
        repaired in any::<bool>(),
        iterations in 0usize..100_000,
        restarts in 0usize..64,
    ) {
        let generated = Generated {
            pattern: random_donor(pattern_seed),
            provenance: Provenance {
                index: index as usize,
                seed: item_seed,
                attempts,
                repaired,
                solve: SolveStats {
                    iterations,
                    restarts,
                },
            },
        };
        let wire = dp_serve::proto::item_to_json(&generated).to_string();
        let back = dp_serve::proto::item_from_json(&json::parse(&wire).unwrap()).unwrap();
        prop_assert_eq!(generated, back);
    }
}
