//! Integration tests for the [`PatternService`] serving engine: the
//! cross-request determinism contract (load-, worker-count- and
//! admission-order-independence), cancellation semantics, handle
//! streaming, and the session ↔ service equivalence that makes
//! `GenerationSession` a thin adapter over the same core.

use diffpattern::drc::check_pattern;
use diffpattern::{
    ConfigError, Generated, PatternService, Pipeline, PipelineConfig, RecvPoll, RequestSpec,
    TrainedModel,
};
use rand::SeedableRng;
use std::sync::Arc;

/// One trained tiny model plus the pipeline-derived base spec.
fn trained(seed: u64, iters: usize) -> (Arc<TrainedModel>, RequestSpec, Pipeline) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
    let _ = pipeline.train(iters, &mut rng).unwrap();
    let model = Arc::new(pipeline.trained_model().unwrap());
    let spec = pipeline.request_spec(0);
    (model, spec, pipeline)
}

fn service(model: &Arc<TrainedModel>, threads: usize) -> PatternService {
    PatternService::builder(Arc::clone(model))
        .threads(threads)
        .build()
        .unwrap()
}

#[test]
fn request_output_is_independent_of_load_workers_and_order() {
    // The tentpole contract: a fixed RequestSpec produces bit-identical
    // output when run alone, alongside concurrent requests, at worker
    // counts {1, 2, 4}, and regardless of submission order or priority.
    let (model, base, _) = trained(70, 4);
    let spec = RequestSpec {
        count: 4,
        ..base.clone()
    }
    .seed(31);

    // Reference: alone, one worker.
    let reference = service(&model, 1).generate(&spec).unwrap();
    assert_eq!(
        reference.items.len() + reference.report.shortfall,
        4,
        "accounting must be closed"
    );

    for workers in [1usize, 2, 4] {
        let svc = service(&model, workers);

        // Alone at this worker count.
        let alone = svc.generate(&spec).unwrap();
        assert_eq!(reference.items, alone.items, "{workers} workers (alone)");
        assert_eq!(reference.report, alone.report);

        // Alongside three concurrent requests with different seeds and
        // priorities, submitted *before* the probe (admission order and
        // queue pressure must not matter).
        let decoys: Vec<RequestSpec> = (0..3)
            .map(|i| {
                RequestSpec {
                    count: 3,
                    priority: i as i32 - 1,
                    ..base.clone()
                }
                .seed(100 + i)
            })
            .collect();
        let decoy_handles: Vec<_> = decoys.iter().map(|d| svc.submit(d).unwrap()).collect();
        let contended = svc.submit(&spec).unwrap().wait().unwrap();
        assert_eq!(
            reference.items, contended.items,
            "{workers} workers (contended) changed the request"
        );
        assert_eq!(reference.report, contended.report);

        // The concurrent requests are themselves deterministic: each must
        // equal its own uncontended single-worker run.
        for (decoy_spec, handle) in decoys.iter().zip(decoy_handles) {
            let contended = handle.wait().unwrap();
            let solo = service(&model, 1).generate(decoy_spec).unwrap();
            assert_eq!(
                solo.items, contended.items,
                "decoy seed {}",
                decoy_spec.seed
            );
        }
    }
}

#[test]
fn session_and_service_share_one_engine_bit_for_bit() {
    // `GenerationSession::generate` is a thin adapter over the service
    // core, so the same seed and config must produce the same bytes
    // through either API.
    let (model, base, pipeline) = trained(71, 4);
    let session = pipeline
        .session_builder(&model)
        .threads(2)
        .seed(45)
        .build()
        .unwrap();
    let via_session = session.generate(5).unwrap();

    let svc = service(&model, 2);
    let via_service = svc
        .generate(
            &RequestSpec {
                count: 5,
                ..base.clone()
            }
            .seed(45),
        )
        .unwrap();
    assert_eq!(via_session.items, via_service.items);
    assert_eq!(via_session.report, via_service.report);

    // Topology sampling agrees too.
    let (topo_session, _) = session.sample_topologies(3);
    let (topo_service, _) = svc
        .sample_topologies(
            &RequestSpec {
                count: 3,
                ..base.clone()
            }
            .seed(45),
        )
        .unwrap();
    assert_eq!(topo_session, topo_service);
}

#[test]
fn dropping_a_handle_cancels_without_disturbing_neighbours() {
    let (model, base, _) = trained(72, 4);

    // Uncontended witness run first.
    let witness_spec = RequestSpec {
        count: 3,
        ..base.clone()
    }
    .seed(7);
    let expected = service(&model, 1).generate(&witness_spec).unwrap();

    let svc = service(&model, 2);
    // A large victim request to cancel mid-stream...
    let victim_spec = RequestSpec {
        count: 16,
        ..base.clone()
    }
    .seed(8);
    let mut victim = svc.submit(&victim_spec).unwrap();
    // ...and the witness competing with it for the same pool.
    let witness = svc.submit(&witness_spec).unwrap();

    // Pull one item off the victim, then drop it mid-stream.
    let first = victim.recv();
    let victim_report = victim.report();
    drop(victim);
    if let Some(g) = &first {
        assert!(g.provenance.index < 16);
        assert!(victim_report.legal_patterns >= 1);
    }

    // The witness must be byte-identical to its uncontended run.
    let contended = witness.wait().unwrap();
    assert_eq!(expected.items, contended.items);
    assert_eq!(expected.report, contended.report);

    // The pool survives cancellation: fresh requests still complete, and
    // repeated submit-and-drop cycles neither wedge nor leak workers.
    for _ in 0..3 {
        let h = svc.submit(&victim_spec).unwrap();
        drop(h);
    }
    let after = svc.generate(&witness_spec).unwrap();
    assert_eq!(expected.items, after.items);

    // Explicit cancel() ends the stream immediately.
    let mut cancelled = svc.submit(&victim_spec).unwrap();
    cancelled.cancel();
    assert!(cancelled.is_finished());
    assert!(cancelled.recv().is_none());
}

#[test]
fn handles_stream_every_item_with_closed_accounting() {
    let (model, base, _) = trained(73, 4);
    let svc = service(&model, 2);
    let spec = RequestSpec {
        count: 5,
        ..base.clone()
    }
    .seed(3);

    // recv() streams items (completion order); the iterator is equivalent.
    let mut handle = svc.submit(&spec).unwrap();
    let mut streamed: Vec<Generated> = Vec::new();
    while let Some(g) = handle.recv() {
        streamed.push(g);
    }
    assert!(handle.is_finished());
    assert!(handle.error().is_none());
    let report = handle.report();
    assert_eq!(streamed.len() + report.shortfall, 5);
    assert_eq!(report.legal_patterns, streamed.len());
    for g in &streamed {
        assert!(check_pattern(&g.pattern, &spec.rules).is_clean());
        assert!(g.provenance.attempts >= 1 && g.provenance.attempts <= spec.max_attempts);
    }

    // The iterator and wait() see the same items.
    let collected: Vec<Generated> = svc.submit(&spec).unwrap().collect();
    assert_eq!(collected.len(), streamed.len());
    let waited = svc.submit(&spec).unwrap().wait().unwrap();
    let mut sorted = streamed;
    sorted.sort_by_key(|g| g.provenance.index);
    assert_eq!(waited.items, sorted);

    // Zero-count requests are well-defined.
    let empty = svc
        .generate(&RequestSpec {
            count: 0,
            ..base.clone()
        })
        .unwrap();
    assert!(empty.items.is_empty());
    assert_eq!(empty.report, diffpattern::PipelineReport::default());
}

#[test]
fn requests_with_different_strides_share_one_service() {
    // Lanes may only share a lock-step micro-batch when they traverse the
    // same denoising plan; requests on different strides must still be
    // served correctly (in their own batches) and deterministically.
    let (model, base, _) = trained(74, 3);
    let svc = service(&model, 2);
    let full = RequestSpec {
        count: 3,
        sample_stride: 1,
        ..base.clone()
    }
    .seed(21);
    let respaced = RequestSpec {
        count: 3,
        sample_stride: 5,
        ..base.clone()
    }
    .seed(21);

    let h_full = svc.submit(&full).unwrap();
    let h_respaced = svc.submit(&respaced).unwrap();
    let got_full = h_full.wait().unwrap();
    let got_respaced = h_respaced.wait().unwrap();

    assert_eq!(got_full.items.len() + got_full.report.shortfall, 3);
    assert_eq!(got_respaced.items.len() + got_respaced.report.shortfall, 3);
    // Different plans genuinely sample differently...
    assert_ne!(got_full.items, got_respaced.items);
    // ...but each equals its solo run.
    assert_eq!(
        got_full.items,
        service(&model, 1).generate(&full).unwrap().items
    );
    assert_eq!(
        got_respaced.items,
        service(&model, 1).generate(&respaced).unwrap().items
    );
}

#[test]
fn service_clones_share_the_engine_and_join_cleanly() {
    let (model, base, _) = trained(75, 3);
    let spec = RequestSpec {
        count: 2,
        ..base.clone()
    }
    .seed(9);
    let expected = service(&model, 1).generate(&spec).unwrap();

    let svc = service(&model, 2);
    let clone = svc.clone();
    // Submit through the clone, drop the original: the pool stays alive
    // until the last clone goes.
    let handle = clone.submit(&spec).unwrap();
    drop(svc);
    let got = handle.wait().unwrap();
    assert_eq!(expected.items, got.items);
    drop(clone); // joins the workers; returning from the test proves it
}

#[test]
fn invalid_specs_are_rejected_at_submit() {
    let (model, base, _) = trained(76, 3);
    let svc = service(&model, 1);
    assert!(matches!(
        svc.submit(&RequestSpec {
            sample_stride: 0,
            ..base.clone()
        }),
        Err(ConfigError::ZeroStride)
    ));
    assert!(matches!(
        svc.submit(&RequestSpec {
            max_attempts: 0,
            ..base.clone()
        }),
        Err(ConfigError::ZeroAttempts)
    ));
    assert!(matches!(
        svc.submit(&RequestSpec {
            solver: diffpattern::legalize::SolverConfig::for_window(8, 2048),
            ..base.clone()
        }),
        Err(ConfigError::WindowTooSmall { .. })
    ));
    assert!(matches!(
        PatternService::builder(Arc::clone(&model))
            .micro_batch(0)
            .build(),
        Err(ConfigError::ZeroMicroBatch)
    ));
}

#[test]
fn dropping_the_service_terminates_outstanding_handles() {
    let (model, base, _) = trained(77, 3);
    let svc = service(&model, 1);
    let handle = svc
        .submit(&RequestSpec {
            count: 32,
            ..base.clone()
        })
        .unwrap();
    drop(svc);
    // With the pool gone, the stream must end (possibly after in-flight
    // lanes drained) instead of blocking forever.
    let drained: Vec<Generated> = handle.collect();
    assert!(drained.len() <= 32);
}

#[test]
fn admission_bound_rejects_with_typed_queue_full_and_recovers() {
    let (model, base, _) = trained(78, 3);
    // One worker claiming one lane at a time keeps a multi-lane request
    // in the admission queue for its whole lifetime.
    let svc = PatternService::builder(Arc::clone(&model))
        .threads(1)
        .micro_batch(1)
        .max_queued_requests(1)
        .build()
        .unwrap();
    assert_eq!(svc.max_queued_requests(), 1);

    let occupant = svc
        .submit(&RequestSpec {
            count: 32,
            ..base.clone()
        })
        .unwrap();

    // The queue is at its bound: the next submit is refused with the
    // typed backpressure error, carrying the observed depth.
    match svc.submit(&RequestSpec {
        count: 1,
        ..base.clone()
    }) {
        Err(ConfigError::QueueFull { queued, max_queued }) => {
            assert_eq!(queued, 1);
            assert_eq!(max_queued, 1);
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }

    // Cancelling the occupant drains the queue; the same spec is then
    // admitted (poll briefly — the prune happens on the next sweep).
    drop(occupant);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let generation = loop {
        match svc.generate(&RequestSpec {
            count: 1,
            ..base.clone()
        }) {
            Ok(generation) => break generation,
            Err(diffpattern::PipelineError::Config(ConfigError::QueueFull { .. }))
                if std::time::Instant::now() < deadline =>
            {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected error while recovering: {other}"),
        }
    };
    assert_eq!(generation.items.len() + generation.report.shortfall, 1);
}

#[test]
fn service_stats_track_queue_and_drain_to_zero() {
    let (model, base, _) = trained(79, 3);
    let svc = PatternService::builder(Arc::clone(&model))
        .threads(1)
        .micro_batch(1)
        .build()
        .unwrap();
    let idle = svc.stats();
    assert_eq!(idle, diffpattern::ServiceStats::default());

    let handle = svc
        .submit(&RequestSpec {
            count: 8,
            ..base.clone()
        })
        .unwrap();
    // While the request runs, the scheduler reports work somewhere
    // (queued or in flight); when the handle completes, everything
    // drains back to zero.
    let busy = svc.stats();
    assert!(
        busy.queued_requests + busy.queued_lanes + busy.lanes_in_flight > 0,
        "{busy:?}"
    );
    let generation = handle.wait().unwrap();
    assert_eq!(generation.items.len() + generation.report.shortfall, 8);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let drained = svc.stats();
        if drained == diffpattern::ServiceStats::default() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stats never drained: {drained:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn in_process_deadline_expires_to_accounted_shortfall() {
    let (model, base, _) = trained(80, 3);
    let svc = service(&model, 1);

    // Already-expired deadline: all lanes become shortfall, nothing is
    // generated, the stream closes immediately.
    let expired = svc
        .generate(
            &RequestSpec {
                count: 5,
                ..base.clone()
            }
            .deadline(std::time::Duration::ZERO),
        )
        .unwrap();
    assert_eq!(expired.items.len(), 0);
    assert_eq!(expired.report.shortfall, 5);

    // A service-wide default deadline applies when the spec sets none.
    let svc = PatternService::builder(Arc::clone(&model))
        .threads(1)
        .default_deadline(std::time::Duration::ZERO)
        .build()
        .unwrap();
    let defaulted = svc
        .generate(&RequestSpec {
            count: 3,
            ..base.clone()
        })
        .unwrap();
    assert_eq!(defaulted.report.shortfall, 3);
}

#[test]
fn first_index_subrange_is_bit_identical_to_the_full_request_slice() {
    // The sub-range determinism contract behind resumable library
    // builds: item `i` of a `first_index: F` request is the same item as
    // item `F + i` of a full request with the same seed — same pattern
    // bits, same per-item seed, same solve provenance. Only the
    // request-relative `index` differs.
    let (model, base, _) = trained(81, 4);
    let svc = service(&model, 2);

    let full = svc
        .generate(
            &RequestSpec {
                count: 10,
                ..base.clone()
            }
            .seed(23),
        )
        .unwrap();
    let sub = svc
        .generate(
            &RequestSpec {
                count: 6,
                ..base.clone()
            }
            .seed(23)
            .first_index(4),
        )
        .unwrap();
    assert_eq!(
        sub.items.len() + sub.report.shortfall,
        6,
        "accounting must be closed"
    );

    for item in &sub.items {
        let reference = full
            .items
            .iter()
            .find(|g| g.provenance.index == item.provenance.index + 4)
            .expect("the full run must contain every sub-range item");
        assert_eq!(reference.pattern, item.pattern, "pattern bits must match");
        assert_eq!(reference.provenance.seed, item.provenance.seed);
        assert_eq!(reference.provenance.attempts, item.provenance.attempts);
        assert_eq!(reference.provenance.repaired, item.provenance.repaired);
        assert_eq!(reference.provenance.solve, item.provenance.solve);
    }

    // Overflowing the index space is a typed config error, not a panic.
    let err = svc
        .submit(
            &RequestSpec {
                count: 2,
                ..base.clone()
            }
            .first_index(usize::MAX),
        )
        .unwrap_err();
    assert!(matches!(err, ConfigError::IndexOverflow { .. }), "{err:?}");
}

#[test]
fn recv_timeout_polls_without_losing_items_or_accounting() {
    let (model, base, _) = trained(82, 4);
    let svc = service(&model, 2);
    let spec = RequestSpec {
        count: 4,
        ..base.clone()
    }
    .seed(29);

    // Reference: the blocking collector.
    let reference = svc.generate(&spec).unwrap();

    // Polling loop: short timeouts interleave `TimedOut` ticks (the
    // network server's liveness-check window) with item delivery, and
    // must surface exactly the same items, in some order, with the same
    // closing report.
    let mut handle = svc.submit(&spec).unwrap();
    let mut items: Vec<Generated> = Vec::new();
    let mut timeouts = 0usize;
    loop {
        match handle.recv_timeout(std::time::Duration::from_millis(5)) {
            RecvPoll::Item(g) => items.push(g),
            RecvPoll::TimedOut => timeouts += 1,
            RecvPoll::Finished => break,
        }
        assert!(timeouts < 1_000_000, "request never completed");
    }
    // Finished is sticky: further polls return it immediately.
    assert!(matches!(
        handle.recv_timeout(std::time::Duration::ZERO),
        RecvPoll::Finished
    ));

    items.sort_by_key(|g| g.provenance.index);
    let mut expected = reference.items.clone();
    expected.sort_by_key(|g| g.provenance.index);
    assert_eq!(items, expected, "polled items must match the blocking run");
    assert_eq!(items.len() + handle.report().shortfall, 4);

    // A zero timeout on a fresh request times out immediately rather
    // than blocking (the first denoising chunk takes far longer than 0ms).
    let mut fresh = svc.submit(&spec).unwrap();
    assert!(matches!(
        fresh.recv_timeout(std::time::Duration::ZERO),
        RecvPoll::TimedOut
    ));
    drop(fresh);
}
