//! Offline stand-in for the `proptest` crate, exposing the API subset this
//! workspace uses: the [`proptest!`] macro, `prop_assert*`/[`prop_assume!`],
//! [`prelude::any`], range strategies, [`collection::vec`] and
//! [`test_runner::ProptestConfig`].
//!
//! The build environment has no cargo registry access, so the workspace
//! pins `proptest` to this path shim (see the root `Cargo.toml` and
//! README). Call sites are source-compatible with the real crate; the
//! difference is behavioural: this shim does plain randomized testing with
//! **no shrinking** — a failing case panics with the sampled inputs
//! reported, but is not minimized. Deterministic per run (fixed seed), so
//! failures reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Runtime re-exports used by the macro expansions. Not public API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type, the shim analogue of
    /// `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of values produced.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy returned by [`any`]; samples the type's full value space.
    pub struct Any<T>(PhantomData<T>);

    /// Produces an arbitrary value of `T`, the shim analogue of
    /// `proptest::prelude::any`.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! any_float {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    // Finite values only; full-range magnitude with sign.
                    let unit: $t = rng.gen();
                    let scale = rng.gen_range(-6i32..=6) as $t;
                    (unit - 0.5) * (10.0 as $t).powf(scale)
                }
            }
        )*};
    }
    any_float!(f32, f64);

    /// A fixed-value strategy, the shim analogue of `proptest::strategy::Just`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection` subset).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec()`], converted from `usize` ranges.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        /// Inclusive minimum length.
        pub min: usize,
        /// Inclusive maximum length.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec: empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`, the shim analogue of
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case plumbing used by the [`proptest!`](crate::proptest)
    //! expansion.

    /// Why a single sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!` precondition; resample.
        Reject,
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    /// Result of one sampled case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-test configuration (`proptest::test_runner::ProptestConfig`
    /// subset).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases, overridable via the `PROPTEST_CASES` env var.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments and runs the body for
/// `ProptestConfig::cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Internal expansion backend of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>
                    ::seed_from_u64(0x5EED_0F_CAFE);
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts: u32 = __config.cases.saturating_mul(64).max(1024);
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest: too many cases rejected by prop_assume! \
                         ({__accepted} accepted after {__attempts} attempts)"
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => panic!("proptest case failed: {}", __msg),
                    }
                }
            }
        )+
    };
}

/// `assert!` analogue that fails the current sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` analogue that fails the current sampled case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// `assert_ne!` analogue that fails the current sampled case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current sampled case unless `cond` holds; the runner
/// resamples instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_stay_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        fn vectors_respect_length(v in collection::vec(any::<bool>(), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        fn assume_filters_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }
}
