//! Offline stand-in for the `criterion` benchmark harness, exposing the
//! API subset this workspace uses: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no cargo registry access, so the workspace
//! pins `criterion` to this path shim (see the root `Cargo.toml` and
//! README). Bench sources are source-compatible with the real crate; the
//! measurement model is simpler: each benchmark runs a fixed number of
//! timed samples (one closure batch per sample) and prints min / median /
//! mean wall-clock times. No statistical regression analysis, plots or
//! HTML reports. Sample count respects `sample_size` capped at
//! [`MAX_SAMPLES`], overridable via the `DP_BENCH_SAMPLES` env var.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Hard cap on samples per benchmark so `cargo bench` stays quick.
pub const MAX_SAMPLES: usize = 10;

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn configured_samples(requested: usize) -> usize {
    std::env::var("DP_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|v: usize| v.clamp(1, 1000))
        .unwrap_or_else(|| requested.clamp(1, MAX_SAMPLES))
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label, so `bench_function` accepts both
/// string names and [`BenchmarkId`]s like the real crate.
pub trait IntoBenchmarkId {
    /// The display label for the benchmark.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Times one benchmark body, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs `body` once per sample, timing each call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Untimed warm-up call.
        black_box(body());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(body());
            self.timings.push(start.elapsed());
        }
    }
}

fn report(label: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{label:50} (no samples recorded)");
        return;
    }
    let mut sorted = timings.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{label:50} min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}   ({} samples)",
        sorted.len()
    );
}

fn run_bench(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    report(label, &bencher.timings);
}

/// A named set of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the requested number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, configured_samples(self.sample_size), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the body.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, configured_samples(self.sample_size), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. Reports are printed eagerly, so this only marks the
    /// group boundary in the output.
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` as a stand-alone (ungrouped) benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(name, configured_samples(MAX_SAMPLES), f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: MAX_SAMPLES,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a runnable group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Criterion benchmark group `", stringify!($name), "`.")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = concat!("Criterion benchmark group `", stringify!($name), "`.")]
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut recorded = 0;
        run_bench("smoke", 3, |b| {
            b.iter(|| black_box(1 + 1));
            recorded = 3;
        });
        assert_eq!(recorded, 3);
    }

    #[test]
    fn group_runs_benches() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function(BenchmarkId::from_parameter(42), |b| {
            b.iter(|| black_box(0u64));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
