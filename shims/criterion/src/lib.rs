//! Offline stand-in for the `criterion` benchmark harness, exposing the
//! API subset this workspace uses: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no cargo registry access, so the workspace
//! pins `criterion` to this path shim (see the root `Cargo.toml` and
//! README). Bench sources are source-compatible with the real crate; the
//! measurement model is simpler: each benchmark runs a fixed number of
//! timed samples (one closure batch per sample) and prints min / median /
//! mean wall-clock times. No statistical regression analysis, plots or
//! HTML reports. Sample count respects `sample_size` capped at
//! [`MAX_SAMPLES`], overridable via the `DP_BENCH_SAMPLES` env var.
//!
//! # Machine-readable medians
//!
//! When `DP_BENCH_JSON` names a file, every completed benchmark also
//! records its **median** there as JSON (one `"label": {"median_ns": …,
//! "samples": …}` entry per benchmark). The file is re-merged on every
//! write: entries produced by *other* bench binaries are preserved, and
//! entries this process re-measures are replaced — so running several
//! `cargo bench` targets against the same path accumulates one combined
//! snapshot (e.g. CI's quick-bench smoke writing `BENCH_pr4.json`). Only
//! medians are recorded on purpose: single-sample wall clocks on shared
//! CPUs swing far too much to be comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Hard cap on samples per benchmark so `cargo bench` stays quick.
pub const MAX_SAMPLES: usize = 10;

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn configured_samples(requested: usize) -> usize {
    std::env::var("DP_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|v: usize| v.clamp(1, 1000))
        .unwrap_or_else(|| requested.clamp(1, MAX_SAMPLES))
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label, so `bench_function` accepts both
/// string names and [`BenchmarkId`]s like the real crate.
pub trait IntoBenchmarkId {
    /// The display label for the benchmark.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Times one benchmark body, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs `body` once per sample, timing each call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Untimed warm-up call.
        black_box(body());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(body());
            self.timings.push(start.elapsed());
        }
    }
}

fn report(label: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{label:50} (no samples recorded)");
        return;
    }
    let mut sorted = timings.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{label:50} min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}   ({} samples)",
        sorted.len()
    );
    if let Ok(path) = std::env::var("DP_BENCH_JSON") {
        if !path.is_empty() {
            record_median(&path, label, median.as_nanos(), sorted.len());
        }
    }
}

/// Median entries recorded by this process, in completion order.
static RECORDED: Mutex<Vec<(String, u128, usize)>> = Mutex::new(Vec::new());

/// Records one benchmark's median and rewrites `path`, merging with
/// entries recorded there by other processes (ours win on label clashes).
fn record_median(path: &str, label: &str, median_ns: u128, samples: usize) {
    let mut recorded = RECORDED.lock().expect("bench results poisoned");
    recorded.retain(|(l, _, _)| l != label);
    recorded.push((label.to_string(), median_ns, samples));

    let mut merged: Vec<(String, u128, usize)> = std::fs::read_to_string(path)
        .map(|existing| parse_medians(&existing))
        .unwrap_or_default();
    merged.retain(|(l, _, _)| recorded.iter().all(|(r, _, _)| r != l));
    merged.extend(recorded.iter().cloned());
    merged.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::from(
        "{\n  \"schema\": \"dp-bench-medians/1\",\n  \"unit\": \"ns\",\n  \"results\": {\n",
    );
    for (i, (l, m, s)) in merged.iter().enumerate() {
        let comma = if i + 1 == merged.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{l}\": {{\"median_ns\": {m}, \"samples\": {s}}}{comma}\n"
        ));
    }
    out.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("DP_BENCH_JSON: cannot write {path}: {e}");
    }
}

/// Parses the entry lines this shim itself writes (label, median,
/// samples); anything unrecognised is skipped, so a hand-edited file
/// degrades gracefully instead of aborting the bench run.
fn parse_medians(text: &str) -> Vec<(String, u128, usize)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix('"') else {
            continue;
        };
        let Some((label, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some((_, rest)) = rest.split_once("\"median_ns\": ") else {
            continue;
        };
        let Some((median, rest)) = rest.split_once(',') else {
            continue;
        };
        let Some((_, rest)) = rest.split_once("\"samples\": ") else {
            continue;
        };
        let samples: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if let (Ok(m), Ok(s)) = (median.trim().parse(), samples.parse()) {
            out.push((label.to_string(), m, s));
        }
    }
    out
}

fn run_bench(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    report(label, &bencher.timings);
}

/// A named set of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the requested number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, configured_samples(self.sample_size), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the body.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, configured_samples(self.sample_size), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. Reports are printed eagerly, so this only marks the
    /// group boundary in the output.
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` as a stand-alone (ungrouped) benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(name, configured_samples(MAX_SAMPLES), f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: MAX_SAMPLES,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a runnable group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Criterion benchmark group `", stringify!($name), "`.")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = concat!("Criterion benchmark group `", stringify!($name), "`.")]
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut recorded = 0;
        run_bench("smoke", 3, |b| {
            b.iter(|| black_box(1 + 1));
            recorded = 3;
        });
        assert_eq!(recorded, 3);
    }

    #[test]
    fn json_medians_round_trip_and_merge_across_processes() {
        let dir = std::env::temp_dir().join(format!("dp_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("medians.json");
        let path_str = path.to_str().unwrap();
        // Simulate an earlier bench binary's snapshot on disk.
        record_median(path_str, "other_target/existing", 111, 2);
        RECORDED.lock().unwrap().clear(); // forget it: now it is "foreign"
        record_median(path_str, "this_target/a", 500, 10);
        record_median(path_str, "this_target/b", 700, 10);
        // Re-measuring a label replaces it instead of duplicating.
        record_median(path_str, "this_target/a", 600, 10);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_medians(&text);
        assert_eq!(
            parsed,
            vec![
                ("other_target/existing".to_string(), 111, 2),
                ("this_target/a".to_string(), 600, 10),
                ("this_target/b".to_string(), 700, 10),
            ]
        );
        assert!(text.starts_with("{\n"));
        assert!(text.trim_end().ends_with('}'));
        RECORDED.lock().unwrap().clear();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_runs_benches() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function(BenchmarkId::from_parameter(42), |b| {
            b.iter(|| black_box(0u64));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
