//! Offline stand-in for the `rand` crate, exposing the 0.8-era API subset
//! this workspace uses: [`Rng`], [`RngCore`], [`SeedableRng`] and
//! [`rngs::StdRng`].
//!
//! The build environment has no access to a cargo registry, so the
//! workspace pins `rand` to this path shim instead of crates.io (see the
//! root `Cargo.toml` and README). The shim is written so that swapping in
//! the real crate is a one-line manifest change: trait names, method
//! signatures and module paths match `rand 0.8`. Only the generator
//! differs — [`rngs::StdRng`] here is xoshiro256** seeded via SplitMix64
//! rather than ChaCha12, so *streams are deterministic per seed but not
//! byte-compatible with upstream `rand`*. Nothing in the workspace relies
//! on upstream stream values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random bits, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a standard-distribution type (`f32`/`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (`rand`'s `Standard`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full f64 mantissa precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types [`Rng::gen_range`] accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range {start}..={end}");
                let span = (end.wrapping_sub(start) as $u as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
uniform_int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! uniform_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                let f = <$t as StandardSample>::sample_standard(rng);
                let v = self.start + f * (self.end - self.start);
                // f < 1 but rounding can still land exactly on `end`;
                // half-open means `end` is excluded, like the real rand.
                if v < self.end { v } else { self.end.next_down() }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range {start}..={end}");
                let f = <$t as StandardSample>::sample_standard(rng);
                start + f * (end - start)
            }
        }
    )*};
}
uniform_float_range!(f32, f64);

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed material (byte array) for [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// so similar seeds give unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (public-domain constants).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Deterministic per seed; *not* stream-compatible with upstream
    /// `rand::rngs::StdRng` (ChaCha12), which nothing here relies on.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
